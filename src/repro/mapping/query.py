"""Logical tables and executable mapping queries (paper Section 4.1).

A :class:`LogicalTable` is a source relation plus further relations reached
through association (join) edges; a :class:`MappingQuery` maps one logical
table onto one target table, filling unmapped target attributes with Skolem
terms.  ``map(RS, RT)`` is the union of the queries of all logical tables —
executed here with in-memory hash joins so generated mappings can be *run*,
not only inspected.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Sequence

from ..errors import MappingError
from ..relational.instance import Relation
from ..relational.schema import AttributeRef, TableSchema
from .joinrules import JoinEdge
from .skolem import SkolemFunction

__all__ = ["LogicalTable", "SelectSource", "MappingQuery"]


@dataclasses.dataclass(frozen=True)
class LogicalTable:
    """A join tree over source relations/views.

    ``relations`` lists the member relation names in join order; ``joins``
    holds one edge per non-anchor member, each connecting a new member
    (its ``right``) to an earlier one (its ``left``).
    """

    relations: tuple[str, ...]
    joins: tuple[JoinEdge, ...]

    def __post_init__(self) -> None:
        if not self.relations:
            raise MappingError("logical table needs at least one relation")
        if len(self.joins) != len(self.relations) - 1:
            raise MappingError(
                f"logical table over {self.relations} needs "
                f"{len(self.relations) - 1} joins, got {len(self.joins)}")
        known = {self.relations[0]}
        for edge, name in zip(self.joins, self.relations[1:]):
            if edge.left not in known or edge.right != name:
                raise MappingError(
                    f"join {edge} does not extend logical table over "
                    f"{sorted(known)} with {name}")
            known.add(name)

    def signature(self) -> frozenset[str]:
        return frozenset(self.relations)

    def __str__(self) -> str:
        if not self.joins:
            return self.relations[0]
        return " ".join([self.relations[0]] +
                        [f"⟗ {e.right} ON {','.join(e.left_attributes)}"
                         for e in self.joins])


@dataclasses.dataclass(frozen=True)
class SelectSource:
    """Where one target attribute's value comes from: a source column or a
    Skolem term over the mapped columns."""

    target_attribute: str
    column: AttributeRef | None = None
    skolem: SkolemFunction | None = None
    skolem_args: tuple[AttributeRef, ...] = ()

    @property
    def is_skolem(self) -> bool:
        return self.skolem is not None

    def __str__(self) -> str:
        if self.column is not None:
            return f"{self.target_attribute} <- {self.column}"
        if self.skolem is not None:
            args = ", ".join(str(a) for a in self.skolem_args)
            return f"{self.target_attribute} <- Sk_{self.skolem.name}({args})"
        return f"{self.target_attribute} <- NULL"


class MappingQuery:
    """One ``map(logical table -> target table)`` query, executable over
    in-memory instances."""

    def __init__(self, target_schema: TableSchema, logical: LogicalTable,
                 select: Sequence[SelectSource]):
        self.target_schema = target_schema
        self.logical = logical
        by_attr = {s.target_attribute: s for s in select}
        missing = [a for a in target_schema.attribute_names if a not in by_attr]
        if missing:
            raise MappingError(
                f"mapping query for {target_schema.name!r} lacks select "
                f"sources for {missing}")
        self.select = tuple(by_attr[a] for a in target_schema.attribute_names)
        member_set = set(logical.relations)
        for source in self.select:
            refs = ([source.column] if source.column else []) + \
                list(source.skolem_args)
            for ref in refs:
                if ref.table not in member_set:
                    raise MappingError(
                        f"select source {source} references {ref.table!r} "
                        f"outside logical table {logical.relations}")

    # ------------------------------------------------------------------
    def join_rows(self, instances: Mapping[str, Relation]) -> list[dict[str, Any]]:
        """Evaluate the logical table: left-outer hash joins in tree order.

        Rows are dicts keyed by qualified names ``relation.attribute``.
        """
        anchor = self.logical.relations[0]
        rows = [
            {f"{anchor}.{k}": v for k, v in row.items()}
            for row in instances[anchor].rows()
        ]
        for edge in self.logical.joins:
            right_relation = instances[edge.right]
            index: dict[tuple, list[dict[str, Any]]] = {}
            for row in right_relation.rows():
                key = tuple(row[a] for a in edge.right_attributes)
                qualified = {f"{edge.right}.{k}": v for k, v in row.items()}
                index.setdefault(key, []).append(qualified)
            joined: list[dict[str, Any]] = []
            for row in rows:
                key = tuple(row.get(f"{edge.left}.{a}")
                            for a in edge.left_attributes)
                partners = index.get(key)
                if partners:
                    for partner in partners:
                        joined.append({**row, **partner})
                else:
                    joined.append(dict(row))  # outer join: keep left side
            rows = joined
        return rows

    def execute(self, instances: Mapping[str, Relation]) -> Relation:
        """Produce the target-table tuples this query contributes."""
        missing = [r for r in self.logical.relations if r not in instances]
        if missing:
            raise MappingError(
                f"instances missing for logical-table members {missing}")
        out_rows: list[tuple] = []
        for row in self.join_rows(instances):
            values = []
            for source in self.select:
                if source.column is not None:
                    values.append(row.get(str(source.column)))
                elif source.skolem is not None:
                    args = [row.get(str(ref)) for ref in source.skolem_args]
                    values.append(source.skolem(args))
                else:
                    values.append(None)
            out_rows.append(tuple(values))
        # Union semantics: duplicate elimination.
        unique = list(dict.fromkeys(out_rows))
        return Relation.from_rows(self.target_schema, unique)

    def explain(self) -> str:
        lines = [f"map -> {self.target_schema.name}",
                 f"  from {self.logical}"]
        lines += [f"  {source}" for source in self.select]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<MappingQuery -> {self.target_schema.name} "
                f"from {self.logical}>")
