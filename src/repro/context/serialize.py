"""JSON-friendly serialization of match results.

Downstream tools (mapping UIs, experiment notebooks, diff-based regression
checks) consume matcher output as data; this module renders
:class:`~repro.context.model.ContextualMatch` lists and
:class:`~repro.context.model.MatchResult` objects as plain dicts and parses
them back.  Conditions round-trip through a small structural encoding
rather than SQL text, so no parser is needed.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from ..errors import ConditionError
from ..relational.conditions import TRUE, And, Condition, Eq, In, Or
from ..relational.schema import AttributeRef
from ..relational.views import View
from .model import ContextualMatch, MatchResult

__all__ = ["condition_to_dict", "condition_from_dict", "match_to_dict",
           "match_from_dict", "result_to_dict"]


def condition_to_dict(condition: Condition) -> dict[str, Any]:
    """Structural encoding of a condition (round-trippable)."""
    if condition.is_true():
        return {"op": "true"}
    if isinstance(condition, Eq):
        return {"op": "eq", "attribute": condition.attribute,
                "value": condition.value}
    if isinstance(condition, In):
        return {"op": "in", "attribute": condition.attribute,
                "values": sorted(condition.values, key=repr)}
    if isinstance(condition, And):
        return {"op": "and",
                "children": [condition_to_dict(c) for c in condition.children]}
    if isinstance(condition, Or):
        return {"op": "or",
                "children": [condition_to_dict(c) for c in condition.children]}
    raise ConditionError(f"cannot serialize condition {condition!r}")


def condition_from_dict(data: Mapping[str, Any]) -> Condition:
    """Inverse of :func:`condition_to_dict`."""
    op = data.get("op")
    if op == "true":
        return TRUE
    if op == "eq":
        return Eq(data["attribute"], data["value"])
    if op == "in":
        return In(data["attribute"], data["values"])
    if op == "and":
        return And.of(*(condition_from_dict(c) for c in data["children"]))
    if op == "or":
        return Or.of(*(condition_from_dict(c) for c in data["children"]))
    raise ConditionError(f"unknown condition encoding {data!r}")


def match_to_dict(match: ContextualMatch) -> dict[str, Any]:
    """Render one match as a JSON-compatible dict."""
    return {
        "source": {"table": match.source.table,
                   "attribute": match.source.attribute},
        "target": {"table": match.target.table,
                   "attribute": match.target.attribute},
        "condition": condition_to_dict(match.condition),
        "condition_on": match.condition_on,
        "score": match.score,
        "confidence": match.confidence,
        "view_sql": match.view.to_sql() if match.view is not None else None,
    }


def match_from_dict(data: Mapping[str, Any]) -> ContextualMatch:
    """Inverse of :func:`match_to_dict` (the view is reconstructed from the
    condition over the source table; projections are not preserved)."""
    condition = condition_from_dict(data["condition"])
    source = AttributeRef(data["source"]["table"],
                          data["source"]["attribute"])
    target = AttributeRef(data["target"]["table"],
                          data["target"]["attribute"])
    condition_on = data.get("condition_on", "source")
    view = None
    if not condition.is_true():
        base = (source.table if condition_on == "source" else target.table)
        view = View(base, condition)
    return ContextualMatch(
        source=source, target=target, condition=condition,
        score=float(data["score"]), confidence=float(data["confidence"]),
        view=view, condition_on=condition_on)


def result_to_dict(result: MatchResult) -> dict[str, Any]:
    """Render a full MatchResult (matches + run diagnostics summary)."""
    return {
        "matches": [match_to_dict(m) for m in result.matches],
        "n_standard_accepted": len(result.standard_matches),
        "n_families": len(result.families),
        "n_candidates": len(result.candidates),
        "elapsed_seconds": result.elapsed_seconds,
    }
