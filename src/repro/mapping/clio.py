"""Clio-style schema mapping generation, extended for contextual matches
(paper Sections 4.1-4.3).

Given the accepted (contextual) matches, the generator

1. treats every match condition as a select-only view on its source table;
2. mines keys / foreign keys on base tables from sample data and derives
   view constraints with the Section 4.2 propagation rules (plus direct
   mining on the materialized view samples, as the paper prescribes after
   Theorem 4.1's undecidability result);
3. builds association edges with Clio's FK rule and the new join 1/2/3
   rules of Section 4.3;
4. forms logical tables per target table from the relations that have
   matches to it, connected through association edges;
5. emits one executable :class:`~repro.mapping.query.MappingQuery` per
   logical table, Skolemizing unmapped target attributes.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Iterable, Mapping, Sequence

from ..context.model import ContextualMatch
from ..errors import MappingError
from ..relational.constraints import ForeignKey, Key
from ..relational.instance import Database, Relation
from ..relational.schema import AttributeRef, Schema, TableSchema
from ..relational.views import View
from .discovery import discover_constraints, discover_keys
from .joinrules import JoinEdge, build_join_edges
from .propagation import ViewConstraints, propagate_view_constraints
from .query import LogicalTable, MappingQuery, SelectSource
from .skolem import SkolemFunction

__all__ = ["SchemaMapping", "generate_mapping"]


@dataclasses.dataclass
class SchemaMapping:
    """A generated mapping: executable queries plus their provenance."""

    target_schema: Schema
    queries: dict[str, list[MappingQuery]]
    views: dict[str, View]
    constraints: ViewConstraints
    edges: list[JoinEdge]

    def source_instances(self, source: Database) -> dict[str, Relation]:
        """Base-table instances plus materialized view samples."""
        instances: dict[str, Relation] = {r.name: r for r in source}
        for view in self.views.values():
            if view.base not in instances:
                raise MappingError(
                    f"view {view.name!r} needs base table {view.base!r}")
            instances[view.name] = view.evaluate(instances[view.base])
        return instances

    def execute(self, source: Database) -> Database:
        """Run every mapping query, unioning contributions per target table."""
        instances = self.source_instances(source)
        out: list[Relation] = []
        for table in self.target_schema:
            queries = self.queries.get(table.name, [])
            result = Relation.empty(table)
            seen_rows: dict[tuple, None] = {}
            for query in queries:
                contribution = query.execute(instances)
                for row in contribution.rows():
                    key = tuple(row[a] for a in table.attribute_names)
                    seen_rows.setdefault(key, None)
            result = Relation.from_rows(table, list(seen_rows))
            out.append(result)
        return Database.from_relations(f"{self.target_schema.name}_mapped", out)

    def explain(self) -> str:
        lines: list[str] = []
        if self.views:
            lines.append("views:")
            lines += [f"  {view}" for view in self.views.values()]
        if self.edges:
            lines.append("association edges:")
            lines += [f"  {edge}" for edge in self.edges]
        for table, queries in sorted(self.queries.items()):
            for query in queries:
                lines.append(query.explain())
        return "\n".join(lines)


def _anchor_order(relations: Iterable[str],
                  weight: Mapping[str, float]) -> list[str]:
    return sorted(relations, key=lambda r: (-weight.get(r, 0.0), r))


def _spanning_tree(component: Sequence[str], edges: Sequence[JoinEdge],
                   weight: Mapping[str, float]) -> LogicalTable:
    """BFS spanning tree over one connected component of the join graph."""
    members = set(component)
    adjacency: dict[str, list[JoinEdge]] = {name: [] for name in members}
    for edge in edges:
        if edge.left in members and edge.right in members:
            adjacency[edge.left].append(edge)
            adjacency[edge.right].append(edge.reversed())
    anchor = _anchor_order(members, weight)[0]
    order = [anchor]
    joins: list[JoinEdge] = []
    visited = {anchor}
    queue = deque([anchor])
    while queue:
        current = queue.popleft()
        for edge in sorted(adjacency[current], key=lambda e: (e.right, e.rule)):
            if edge.right in visited:
                continue
            visited.add(edge.right)
            order.append(edge.right)
            joins.append(edge)
            queue.append(edge.right)
    # Unreached members (no edge) are dropped from this logical table; the
    # caller creates separate logical tables for them.
    return LogicalTable(tuple(order), tuple(joins))


def _components(members: Sequence[str],
                edges: Sequence[JoinEdge]) -> list[list[str]]:
    member_set = set(members)
    adjacency: dict[str, set[str]] = {m: set() for m in members}
    for edge in edges:
        if edge.left in member_set and edge.right in member_set:
            adjacency[edge.left].add(edge.right)
            adjacency[edge.right].add(edge.left)
    seen: set[str] = set()
    components: list[list[str]] = []
    for member in sorted(member_set):
        if member in seen:
            continue
        component = []
        queue = deque([member])
        seen.add(member)
        while queue:
            current = queue.popleft()
            component.append(current)
            for neighbour in sorted(adjacency[current]):
                if neighbour not in seen:
                    seen.add(neighbour)
                    queue.append(neighbour)
        components.append(component)
    return components


def generate_mapping(matches: Sequence[ContextualMatch], source: Database,
                     target_schema: Schema,
                     *, declared_keys: Sequence[Key] = (),
                     declared_fks: Sequence[ForeignKey] = (),
                     min_confidence: float = 0.0) -> SchemaMapping:
    """Generate an executable schema mapping from (contextual) matches.

    ``declared_keys`` / ``declared_fks`` supplement the constraints mined
    from the source sample, mirroring Clio's "declared or discovered"
    stance.  ``min_confidence`` models the user-verification step the paper
    assumes before mapping ("once verified by the user, matches ...
    constitute a key input"): low-confidence matcher output below the
    threshold is not turned into value correspondences.
    """
    if min_confidence > 0.0:
        matches = [m for m in matches if m.confidence >= min_confidence]
    if not matches:
        raise MappingError("cannot generate a mapping from zero matches")
    target_side = [m for m in matches
                   if m.is_contextual and m.condition_on == "target"]
    if target_side:
        raise MappingError(
            "mapping generation expects source-side conditions; got "
            f"{len(target_side)} target-side matches (from run_reversed). "
            "Flip them back with ContextualMatch.flipped() and swap the "
            "schemas, or re-run matching in the source->target direction.")

    views: dict[str, View] = {}
    for match in matches:
        if match.view is not None:
            views[match.view.name] = match.view

    mined_keys, mined_fks = discover_constraints(source)
    base_keys = list(declared_keys) + mined_keys
    base_fks = list(declared_fks) + mined_fks
    constraints = ViewConstraints(keys=list(base_keys),
                                  foreign_keys=list(base_fks))

    base_attributes = {
        relation.name: relation.schema.attribute_names for relation in source}
    for view in views.values():
        base = source.relation(view.base)
        domain = frozenset(base.distinct(
            next(iter(view.condition.attributes()), "")))\
            if view.condition.attributes() else frozenset()
        propagated = propagate_view_constraints(
            view, base.schema.attribute_names, base_keys, base_fks,
            active_domain=domain or None)
        # Direct mining on the materialized view sample (paper 4.2 (a)).
        materialized = view.evaluate(base)
        mined_view_keys = discover_keys(materialized, max_width=1)
        propagated.keys = propagated.keys + [
            k for k in mined_view_keys if k not in propagated.keys]
        constraints = constraints.merge(propagated)

    edges = build_join_edges(views.values(), constraints, base_attributes,
                             base_fks)

    # Group matches by target table and by originating relation (view name
    # for contextual matches, base table otherwise).
    per_target: dict[str, dict[str, list[ContextualMatch]]] = {}
    confidence_weight: dict[str, float] = {}
    for match in matches:
        per_target.setdefault(match.target.table, {}) \
                  .setdefault(match.source_name, []).append(match)
        confidence_weight[match.source_name] = \
            confidence_weight.get(match.source_name, 0.0) + match.confidence

    queries: dict[str, list[MappingQuery]] = {}
    for table in target_schema:
        matched = per_target.get(table.name)
        if not matched:
            continue
        members = sorted(matched)
        table_queries: list[MappingQuery] = []
        seen_signatures: set[frozenset] = set()
        for component in _components(members, edges):
            logical = _spanning_tree(component, edges, confidence_weight)
            if logical.signature() in seen_signatures:
                continue
            seen_signatures.add(logical.signature())
            select = _build_select(table, logical, matched)
            table_queries.append(MappingQuery(table, logical, select))
        queries[table.name] = table_queries

    return SchemaMapping(target_schema=target_schema, queries=queries,
                         views=views, constraints=constraints, edges=edges)


def _build_select(table: TableSchema, logical: LogicalTable,
                  matched: Mapping[str, list[ContextualMatch]]
                  ) -> list[SelectSource]:
    """Choose, per target attribute, the best match within the logical
    table; Skolemize the rest over the mapped columns."""
    members = set(logical.relations)
    best: dict[str, ContextualMatch] = {}
    for relation in logical.relations:
        for match in matched.get(relation, ()):
            current = best.get(match.target.attribute)
            if current is None or match.confidence > current.confidence:
                best[match.target.attribute] = match
    mapped_columns: list[AttributeRef] = []
    select: list[SelectSource] = []
    for attribute in table.attribute_names:
        match = best.get(attribute)
        if match is not None and match.source_name in members:
            column = AttributeRef(match.source_name, match.source.attribute)
            mapped_columns.append(column)
            select.append(SelectSource(attribute, column=column))
        else:
            select.append(SelectSource(attribute))  # placeholder, fixed below
    args = tuple(mapped_columns)
    return [
        source if source.column is not None else SelectSource(
            source.target_attribute,
            skolem=SkolemFunction(f"{table.name}_{source.target_attribute}"),
            skolem_args=args)
        for source in select
    ]
