"""Standard (non-contextual) schema matching — paper Section 2.3.

The contextual layer (:mod:`repro.context`) treats this package as a black
box via the :class:`MatchingSystem` protocol; any instance-based matcher
implementing that protocol can be substituted.
"""

from .combiner import CombinedScore, MatcherEvidence, combine_evidence
from .matchers import (AttributeSample, Matcher, NameMatcher, NumericMatcher,
                       QGramMatcher, TypeMatcher, ValueOverlapMatcher,
                       default_matchers)
from .normalize import confidences_from_scores
from .similarity import (containment, cosine_counts, dice, jaccard, jaro,
                         jaro_winkler, levenshtein, levenshtein_similarity)
from .standard import (AttributeMatch, MatchingSystem, StandardMatch,
                       StandardMatchConfig, TargetIndex)
from .tokens import (QGramCache, cached_qgrams, clear_token_cache,
                     normalize_text, qgram_set, qgrams, token_cache_counters,
                     value_to_text, word_tokens)

__all__ = [
    "AttributeMatch",
    "AttributeSample",
    "Matcher",
    "MatchingSystem",
    "StandardMatch",
    "StandardMatchConfig",
    "TargetIndex",
    "NameMatcher",
    "QGramMatcher",
    "NumericMatcher",
    "ValueOverlapMatcher",
    "TypeMatcher",
    "default_matchers",
    "CombinedScore",
    "MatcherEvidence",
    "combine_evidence",
    "confidences_from_scores",
    "levenshtein",
    "levenshtein_similarity",
    "jaro",
    "jaro_winkler",
    "jaccard",
    "dice",
    "containment",
    "cosine_counts",
    "qgrams",
    "qgram_set",
    "word_tokens",
    "normalize_text",
    "value_to_text",
    "QGramCache",
    "cached_qgrams",
    "token_cache_counters",
    "clear_token_cache",
]
