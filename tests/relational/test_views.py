"""Unit tests for views and view families."""

import pytest

from repro.errors import ConditionError, SchemaError
from repro.relational import TRUE, Eq, In, View, ViewFamily, view_name


class TestView:
    def test_evaluate_filters(self, inv_relation):
        view = View("inv", Eq("type", 1))
        result = view.evaluate(inv_relation)
        assert len(result) == 3
        assert all(r["type"] == 1 for r in result.rows())
        assert result.schema.is_view

    def test_evaluate_wrong_base_rejected(self, inv_relation):
        with pytest.raises(SchemaError):
            View("other", TRUE).evaluate(inv_relation)

    def test_projection(self, inv_relation):
        view = View("inv", Eq("type", 2), projection=("id", "name"))
        result = view.evaluate(inv_relation)
        assert result.schema.attribute_names == ("id", "name")
        assert len(result) == 2

    def test_default_name_is_deterministic(self):
        v1 = View("inv", Eq("type", 1))
        v2 = View("inv", Eq("type", 1))
        assert v1.name == v2.name == view_name("inv", Eq("type", 1))

    def test_to_sql(self):
        view = View("inv", Eq("type", 1), projection=("id", "name"))
        assert view.to_sql() == "SELECT id, name FROM inv WHERE type = 1"

    def test_identity_view_sql(self):
        assert View("inv", TRUE).to_sql() == "SELECT * FROM inv"
        assert View("inv", TRUE).is_identity

    def test_restrict_conjoins(self):
        view = View("inv", Eq("type", 1)).restrict(Eq("instock", "Y"))
        assert view.condition.attributes() == {"type", "instock"}

    def test_empty_base_rejected(self):
        with pytest.raises(SchemaError):
            View("", TRUE)

    def test_schema_projection(self, inv_relation):
        view = View("inv", Eq("type", 1), projection=("name",))
        schema = view.schema(inv_relation.schema)
        assert schema.attribute_names == ("name",)
        assert schema.is_view

    def test_views_hashable(self):
        assert View("inv", Eq("a", 1)) == View("inv", Eq("a", 1))
        assert len({View("inv", Eq("a", 1)), View("inv", Eq("a", 1))}) == 1


class TestViewFamily:
    def test_simple_family(self):
        family = ViewFamily.simple("inv", "type", [1, 2])
        views = family.views()
        assert len(views) == 2
        assert {str(v.condition) for v in views} == {"type = 1", "type = 2"}

    def test_partitions_relation(self, inv_relation):
        family = ViewFamily.simple("inv", "type", [1, 2])
        total = sum(len(v.evaluate(inv_relation)) for v in family)
        assert total == len(inv_relation)

    def test_merge_creates_disjunctive_view(self):
        family = ViewFamily.simple("inv", "type", [1, 2, 3])
        merged = family.merge(1, 3)
        assert len(merged) == 2
        conditions = {v.condition for v in merged.views()}
        assert In("type", [1, 3]) in conditions
        assert Eq("type", 2) in conditions

    def test_merge_same_group_is_noop(self):
        family = ViewFamily.simple("inv", "type", [1, 2]).merge(1, 2)
        assert family.merge(1, 2) is family

    def test_merge_unknown_value_raises(self):
        family = ViewFamily.simple("inv", "type", [1, 2])
        with pytest.raises(ConditionError):
            family.merge(1, 99)

    def test_group_label(self):
        family = ViewFamily.simple("inv", "type", [1, 2, 3]).merge(1, 2)
        assert family.group_label(1) == frozenset({1, 2})
        assert family.group_label(3) == frozenset({3})

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ConditionError):
            ViewFamily("inv", "type", [[1, 2], [2, 3]])

    def test_empty_group_rejected(self):
        with pytest.raises(ConditionError):
            ViewFamily("inv", "type", [[]])

    def test_no_groups_rejected(self):
        with pytest.raises(ConditionError):
            ViewFamily("inv", "type", [])

    def test_equality_ignores_group_order(self):
        f1 = ViewFamily("inv", "type", [[1], [2, 3]])
        f2 = ViewFamily("inv", "type", [[3, 2], [1]])
        assert f1 == f2
        assert hash(f1) == hash(f2)

    def test_quality_carried(self):
        family = ViewFamily.simple("inv", "type", [1, 2], quality=0.97)
        assert family.quality == 0.97
