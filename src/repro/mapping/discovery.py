"""Constraint mining from sample data (paper Sections 4.1-4.2).

Clio's mapping generation depends on keys and foreign keys "either declared
in the definition of the schema, or discovered using constraint mining
tools"; the paper additionally mines constraints on views ("we employ
constraint mining tools on sample data to discover keys and (contextual)
foreign keys on views").  This module is that mining tool: it proposes
single-attribute and pair keys that hold on the sample, and foreign keys
supported by value inclusion.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..relational.constraints import ForeignKey, Key
from ..relational.instance import Database, Relation

__all__ = ["discover_keys", "discover_foreign_keys", "discover_constraints"]


def discover_keys(relation: Relation, *, max_width: int = 2,
                  minimal_only: bool = True) -> list[Key]:
    """Keys of *relation* supported by the sample.

    Proposes single attributes first, then attribute pairs (wider keys are
    rarely useful for join inference and explode combinatorially).  With
    ``minimal_only`` a pair is only reported when neither component is
    already a key by itself.
    """
    if max_width < 1:
        raise ValueError(f"max_width must be >= 1, got {max_width}")
    names = relation.schema.attribute_names
    keys: list[Key] = []
    single: set[str] = set()
    for name in names:
        candidate = Key(relation.name, (name,))
        if candidate.holds_on(relation):
            keys.append(candidate)
            single.add(name)
    if max_width >= 2:
        for a, b in itertools.combinations(names, 2):
            if minimal_only and (a in single or b in single):
                continue
            candidate = Key(relation.name, (a, b))
            if candidate.holds_on(relation):
                keys.append(candidate)
    return keys


def _inclusion_holds(child: Relation, child_attrs: Sequence[str],
                     parent: Relation, parent_attrs: Sequence[str]) -> bool:
    fk = ForeignKey(child.name, tuple(child_attrs),
                    parent.name, tuple(parent_attrs))
    return fk.holds_on(child, parent)


def discover_foreign_keys(database: Database,
                          keys: Iterable[Key] | None = None,
                          *, min_child_rows: int = 1) -> list[ForeignKey]:
    """Single-attribute foreign keys supported by sample inclusion.

    For every discovered (or supplied) single-attribute key ``R1[x]`` and
    every attribute ``y`` of every other table with a compatible type whose
    non-missing values are all contained in ``v(R1.x)``, propose
    ``R2[y] ⊆ R1[x]``.  Trivial self-references are skipped.
    """
    if keys is None:
        keys = [k for relation in database
                for k in discover_keys(relation, max_width=1)]
    single_keys = [k for k in keys if len(k.attributes) == 1]
    out: list[ForeignKey] = []
    for key in single_keys:
        if key.table not in database:
            continue
        parent = database.relation(key.table)
        parent_attr = key.attributes[0]
        parent_type = parent.schema.dtype(parent_attr)
        for child in database:
            for attribute in child.schema:
                if (child.name == key.table
                        and attribute.name == parent_attr):
                    continue
                if not attribute.dtype.compatible_with(parent_type):
                    continue
                values = child.non_missing(attribute.name)
                if len(values) < min_child_rows:
                    continue
                if _inclusion_holds(child, [attribute.name],
                                    parent, [parent_attr]):
                    out.append(ForeignKey(child.name, (attribute.name,),
                                          key.table, (parent_attr,)))
    return out


def discover_constraints(database: Database,
                         *, max_key_width: int = 2
                         ) -> tuple[list[Key], list[ForeignKey]]:
    """Mine keys and foreign keys for every table of a database."""
    keys: list[Key] = []
    for relation in database:
        keys.extend(discover_keys(relation, max_width=max_key_width))
    fks = discover_foreign_keys(database, keys)
    return keys, fks
