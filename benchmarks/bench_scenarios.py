"""Scenario-suite benchmark: the full registered matrix end-to-end.

Runs every registered scenario (five families x base + three perturbation
variants) through :func:`repro.evaluation.run_scenario` at bench scale and
records one machine-readable ``results/BENCH_scenarios.json`` payload:
per-scenario pipeline seconds and quality metrics plus suite totals.  This
is the throughput view of the golden tier — the golden *tests* pin quality
per scenario at fixed tiny sizes, this benchmark tracks how fast (and how
well) the engine chews through the whole corpus at larger sizes.

``BENCH_TINY=1`` maps every spec onto golden-tier-sized workloads for the
CI smoke run; the committed JSON is the full-scale run.
"""

from conftest import BENCH_TINY, bench_scenario, run_once
from repro.datagen import get_scenario, registered_scenarios
from repro.evaluation import run_scenario

#: Bench-scale source sizes (grades interprets size as student count and
#: stays smaller: its narrow table has size x gamma rows).
FULL_SIZE = {"grades": 400}
TINY_SIZE = {"grades": 90}
FULL_DEFAULT = 1000
TINY_DEFAULT = 150


def _suite_specs():
    specs = []
    for spec in registered_scenarios():
        specs.append(bench_scenario(
            spec,
            tiny_size=TINY_SIZE.get(spec.family, TINY_DEFAULT),
            full_size=FULL_SIZE.get(spec.family, FULL_DEFAULT)))
    return specs


def _run_suite(specs):
    return [run_scenario(spec) for spec in specs]


def test_scenario_suite(benchmark, record_json):
    specs = _suite_specs()
    results = run_once(benchmark, _run_suite, specs)

    per_scenario = {}
    for result in results:
        per_scenario[result.scenario] = {
            "elapsed_seconds": result.elapsed_seconds,
            "accuracy": result.metrics.accuracy,
            "precision": result.metrics.precision,
            "fmeasure": result.metrics.fmeasure,
            "n_matches": result.n_matches,
            "n_contextual": result.n_contextual,
        }
    total = sum(r.elapsed_seconds for r in results)

    record_json("BENCH_scenarios", {
        "benchmark": "bench_scenarios",
        "config": {"tiny": BENCH_TINY,
                   "sizes": {spec.name: spec.size for spec in specs}},
        "n_scenarios": len(results),
        "scenarios": per_scenario,
        "totals": {
            "elapsed_seconds": total,
            "scenarios_per_second": (len(results) / total if total > 0
                                     else 0.0),
        },
    })

    assert len(results) == len(specs) >= 20
    # Every family's base scenario must find contextual matches; perturbed
    # variants may legitimately degrade further, so only plumbing is
    # asserted for them.
    for result in results:
        spec = get_scenario(result.scenario)
        if not spec.perturbations:
            assert result.n_contextual > 0, result.scenario
            assert result.metrics.fmeasure > 0.0, result.scenario
        assert result.counters["profile_misses"] > 0, result.scenario
