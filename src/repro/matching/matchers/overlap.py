"""Exact value-overlap instance matcher.

Measures Jaccard overlap between the *distinct value sets* of the two
attributes.  Strong evidence for code-like columns (formats, labels,
identifiers) where whole values recur across schemas; weak (correctly) for
free text.  Applicable to every type.
"""

from __future__ import annotations

from ..similarity import jaccard
from ..tokens import value_to_text
from .base import AttributeSample, Matcher

__all__ = ["ValueOverlapMatcher"]


class ValueOverlapMatcher(Matcher):
    """Jaccard similarity of normalized distinct value sets."""

    name = "overlap"
    #: Distinct-value sets are additive over disjoint bags by union.
    mergeable = True

    def __init__(self, *, weight: float = 1.0):
        self.weight = weight

    def applicable(self, source: AttributeSample, target: AttributeSample) -> bool:
        return len(source) > 0 and len(target) > 0

    def profile(self, sample: AttributeSample) -> frozenset[str]:
        return frozenset(value_to_text(v).lower() for v in sample.values)

    def score_profiles(self, source: frozenset, target: frozenset) -> float:
        if not source or not target:
            return 0.0
        return jaccard(source, target)

    def merge_profiles(self, profiles) -> frozenset:
        return frozenset().union(*profiles)
