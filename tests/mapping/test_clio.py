"""Integration tests for the extended Clio mapping generator."""

import pytest

from repro import ContextMatch, ContextMatchConfig
from repro.errors import MappingError
from repro.mapping import clio_qual_table, generate_mapping


class TestGradesMapping:
    @pytest.fixture(scope="class")
    def pipeline(self, grades_workload):
        config = ContextMatchConfig(inference="src", early_disjuncts=False,
                                    seed=3)
        return clio_qual_table(grades_workload.source,
                               grades_workload.target, config)

    def test_succeeds(self, pipeline):
        assert pipeline.succeeded

    def test_single_logical_table_joins_views(self, pipeline):
        queries = pipeline.mapping.queries["grades_wide"]
        largest = max(queries, key=lambda q: len(q.logical.relations))
        assert len(largest.logical.relations) >= 4
        assert all(e.rule in {"join1", "join2"} for e in largest.logical.joins)
        assert all(e.left_attributes == ("name",)
                   for e in largest.logical.joins)

    def test_pivot_is_faithful(self, pipeline, grades_workload):
        wide = pipeline.mapped.relation("grades_wide")
        narrow = grades_workload.source.relation("grades_narrow")
        expected = {}
        for row in narrow.rows():
            expected.setdefault(row["name"], {})[
                f"grade{row['examNum']}"] = row["grade"]
        checked = mismatched = 0
        for row in wide.rows():
            for exam in range(1, 6):
                want = expected.get(row["name"], {}).get(f"grade{exam}")
                if want is None:
                    continue
                checked += 1
                if row[f"grade{exam}"] != want:
                    mismatched += 1
        assert checked > 100
        assert mismatched / checked < 0.05

    def test_contextual_fks_derived(self, pipeline):
        cfks = pipeline.mapping.constraints.contextual_foreign_keys
        assert any(fk.context_attribute == "examNum" for fk in cfks)

    def test_explain_is_readable(self, pipeline):
        text = pipeline.mapping.explain()
        assert "views:" in text
        assert "map -> grades_wide" in text


class TestRetailMapping:
    @pytest.fixture(scope="class")
    def mapping_and_result(self, retail_workload):
        config = ContextMatchConfig(inference="src", early_disjuncts=True,
                                    seed=5)
        result = ContextMatch(config).run(retail_workload.source,
                                          retail_workload.target)
        mapping = generate_mapping(result.matches, retail_workload.source,
                                   retail_workload.target.schema,
                                   min_confidence=0.6)
        return result, mapping

    def test_queries_for_both_targets(self, mapping_and_result):
        _, mapping = mapping_and_result
        assert "books" in mapping.queries
        assert "cds" in mapping.queries

    def test_execution_partitions_source(self, mapping_and_result,
                                         retail_workload):
        _, mapping = mapping_and_result
        migrated = mapping.execute(retail_workload.source)
        books = migrated.relation("books")
        cds = migrated.relation("cds")
        assert len(books) > 0 and len(cds) > 0
        items = retail_workload.source.relation("items")
        n_books = sum(1 for t in items.column("ItemType")
                      if t in retail_workload.book_values)
        assert len(books) == n_books
        assert len(cds) == len(items) - n_books

    def test_migrated_codes_are_separated(self, mapping_and_result,
                                          retail_workload):
        _, mapping = mapping_and_result
        migrated = mapping.execute(retail_workload.source)
        isbn_values = migrated.relation("books").column("isbn")
        asin_values = migrated.relation("cds").column("asin")
        assert all(not str(v).startswith("B0") for v in isbn_values if v)
        assert all(str(v).startswith("B0") for v in asin_values if v)

    def test_unmapped_attributes_skolemized(self, mapping_and_result):
        # format/label have no source counterpart: their select sources
        # must be Skolem terms.
        _, mapping = mapping_and_result
        for query in mapping.queries["books"]:
            by_attr = {s.target_attribute: s for s in query.select}
            assert by_attr["format"].is_skolem


class TestErrors:
    def test_zero_matches_rejected(self, retail_workload):
        with pytest.raises(MappingError):
            generate_mapping([], retail_workload.source,
                             retail_workload.target.schema)


class TestTargetSideGuard:
    def test_reversed_matches_rejected_with_guidance(self, retail_workload):
        """Target-side conditions (run_reversed output) cannot drive the
        source->target mapping; the error says how to fix it."""
        from repro import ContextMatch, ContextMatchConfig
        result = ContextMatch(
            ContextMatchConfig(inference="src", seed=2)).run_reversed(
            retail_workload.target, retail_workload.source)
        assert result.contextual_matches
        with pytest.raises(MappingError, match="target-side"):
            generate_mapping(result.matches, retail_workload.target,
                             retail_workload.source.schema)
