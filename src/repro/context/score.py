"""Re-scoring prototype matches against candidate views — ``ScoreMatch``
(Figure 5, lines 6-11).

For each candidate view ``Vc`` the sample of the base table is restricted by
``c`` and every accepted prototype match from that table is re-evaluated by
the (black-box) standard matcher.  Confidences are re-normalized against the
distribution of the restricted sample's scores across all target attributes,
exactly as the strawman discussion prescribes ("estimated using the new
score s'_i and the distribution of scores seen for RS.s across the sample").
"""

from __future__ import annotations

from typing import Sequence

from ..matching.standard import AttributeMatch, MatchingSystem, TargetIndex
from ..relational.instance import Relation
from ..relational.views import View, ViewFamily
from .model import CandidateScore

__all__ = ["score_view_candidates", "score_family_candidates"]


def score_view_candidates(view: View, family: ViewFamily, base: Relation,
                          accepted: Sequence[AttributeMatch],
                          matcher: MatchingSystem, index: TargetIndex,
                          *, min_view_rows: int = 2) -> list[CandidateScore]:
    """Evaluate one candidate view against the accepted matches of its base.

    Returns one :class:`CandidateScore` per (view, prototype match) pair —
    the entries added to RL.  Views whose restricted sample is smaller than
    ``min_view_rows`` are skipped: they cannot be scored meaningfully.
    """
    restricted = view.evaluate(base)
    if len(restricted) < min_view_rows:
        return []
    by_attr: dict[str, list[AttributeMatch]] = {}
    for match in accepted:
        if match.source.table == base.name:
            by_attr.setdefault(match.source.attribute, []).append(match)
    results: list[CandidateScore] = []
    for attr_name, matches in by_attr.items():
        attribute = restricted.schema.attribute(attr_name)
        scored = matcher.score_attribute(
            view.name, restricted.column(attr_name), attribute, index)
        by_target = {(m.target.table, m.target.attribute): m for m in scored}
        for match in matches:
            rescored = by_target.get(
                (match.target.table, match.target.attribute))
            if rescored is None:
                continue
            results.append(CandidateScore(
                view=view, family=family, base_match=match,
                rescored=rescored, view_rows=len(restricted)))
    return results


def score_family_candidates(family: ViewFamily, base: Relation,
                            accepted: Sequence[AttributeMatch],
                            matcher: MatchingSystem, index: TargetIndex,
                            *, min_view_rows: int = 2,
                            seen_views: set[View] | None = None) -> list[CandidateScore]:
    """Score every member view of a family (the loop body of Figure 5).

    Distinct families frequently share member views (a merged family keeps
    the singleton views it did not merge), so callers pass ``seen_views``
    to score each distinct view exactly once — duplicates would otherwise
    inflate the per-view confidence totals used by ``QualTable``.
    """
    results: list[CandidateScore] = []
    for view in family.views():
        if seen_views is not None:
            if view in seen_views:
                continue
            seen_views.add(view)
        results.extend(score_view_candidates(
            view, family, base, accepted, matcher, index,
            min_view_rows=min_view_rows))
    return results
