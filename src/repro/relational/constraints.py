"""Keys, foreign keys and contextual foreign keys (paper Section 4.2).

The paper extends the classical definitions so that both sides of a key or
foreign key may be views, and introduces the *contextual foreign key*

    ``V1[Y, a = v]  ⊆  R[X, b]``

which holds when every ``Y``-tuple of the view, augmented with the constant
``v`` for the selection attribute ``a``, references an ``[X, b]``-key tuple
of ``R``.  These constraints drive the new join rules of Section 4.3.

Every constraint knows how to check itself against a :class:`Database`
holding sample instances; the mining module
(:mod:`repro.mapping.discovery`) uses these checks to discover constraints
from data the way Clio does.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from ..errors import ConstraintError
from .instance import Relation
from .types import is_missing

__all__ = ["Key", "ForeignKey", "ContextualForeignKey"]


def _tuple_of(row: dict[str, Any], attrs: tuple[str, ...]) -> tuple[Any, ...] | None:
    """Project a row onto *attrs*; None when any component is missing, since
    NULLs neither violate keys nor participate in references (SQL semantics)."""
    values = tuple(row[a] for a in attrs)
    if any(is_missing(v) for v in values):
        return None
    return values


@dataclasses.dataclass(frozen=True)
class Key:
    """``R[X] -> R``: the X attributes uniquely identify a tuple of R."""

    table: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConstraintError("key needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ConstraintError(f"duplicate attributes in key {self}")

    def holds_on(self, instance: Relation) -> bool:
        """Check the uniqueness requirement on a sample instance."""
        seen: set[tuple[Any, ...]] = set()
        for row in instance.rows():
            value = _tuple_of(row, self.attributes)
            if value is None:
                continue
            if value in seen:
                return False
            seen.add(value)
        return True

    def __str__(self) -> str:
        return f"{self.table}[{', '.join(self.attributes)}] -> {self.table}"


@dataclasses.dataclass(frozen=True)
class ForeignKey:
    """``R2[Y] ⊆ R1[X]`` where X is a key of R1.

    ``child`` is R2 (the referencing side), ``parent`` is R1 (the referenced
    side).  Either side may be a base table or a view.
    """

    child: str
    child_attributes: tuple[str, ...]
    parent: str
    parent_attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_attributes) != len(self.parent_attributes):
            raise ConstraintError(
                f"foreign key arity mismatch: {self.child_attributes} vs "
                f"{self.parent_attributes}"
            )
        if not self.child_attributes:
            raise ConstraintError("foreign key needs at least one attribute")

    def holds_on(self, child: Relation, parent: Relation) -> bool:
        """Referential containment check over sample instances."""
        parent_keys = {
            t for t in (
                _tuple_of(row, self.parent_attributes) for row in parent.rows()
            ) if t is not None
        }
        for row in child.rows():
            value = _tuple_of(row, self.child_attributes)
            if value is None:
                continue
            if value not in parent_keys:
                return False
        return True

    @property
    def referenced_key(self) -> Key:
        return Key(self.parent, self.parent_attributes)

    def __str__(self) -> str:
        return (f"{self.child}[{', '.join(self.child_attributes)}] ⊆ "
                f"{self.parent}[{', '.join(self.parent_attributes)}]")


@dataclasses.dataclass(frozen=True)
class ContextualForeignKey:
    """``V[Y, a = v] ⊆ R[X, b]`` — a contextual foreign key (Section 4.2).

    Attributes
    ----------
    view:
        Name of the view V1 (the referencing side).
    view_attributes:
        The list Y of attributes of the view.
    context_attribute:
        The attribute ``a`` of V1's base table; it appears in the view's
        selection condition but need not be in the view's projection.
    context_value:
        The constant ``v`` of the selection condition ``a = v``.
    parent / parent_attributes / parent_context_attribute:
        R, X and b on the referenced side; ``[X, b]`` must be a key of R.
    """

    view: str
    view_attributes: tuple[str, ...]
    context_attribute: str
    context_value: Any
    parent: str
    parent_attributes: tuple[str, ...]
    parent_context_attribute: str

    def __post_init__(self) -> None:
        if len(self.view_attributes) != len(self.parent_attributes):
            raise ConstraintError(
                f"contextual foreign key arity mismatch: "
                f"{self.view_attributes} vs {self.parent_attributes}"
            )
        if not self.view_attributes:
            raise ConstraintError("contextual foreign key needs Y attributes")

    def holds_on(self, view_instance: Relation, parent_instance: Relation) -> bool:
        """For every tuple t1 of the view instance there must exist a tuple t
        of the parent with t1[Y] = t[X] and t[b] = v."""
        attrs = self.parent_attributes + (self.parent_context_attribute,)
        parent_keys = {
            t for t in (
                _tuple_of(row, attrs) for row in parent_instance.rows()
            ) if t is not None
        }
        for row in view_instance.rows():
            value = _tuple_of(row, self.view_attributes)
            if value is None:
                continue
            if value + (self.context_value,) not in parent_keys:
                return False
        return True

    @property
    def referenced_key(self) -> Key:
        return Key(self.parent,
                   self.parent_attributes + (self.parent_context_attribute,))

    def to_foreign_key_like(self) -> ForeignKey:
        """The plain foreign-key shadow (dropping the context component);
        useful when feeding Clio's original rules."""
        return ForeignKey(self.view, self.view_attributes,
                          self.parent, self.parent_attributes)

    def __str__(self) -> str:
        ys = ", ".join(self.view_attributes)
        xs = ", ".join(self.parent_attributes)
        return (f"{self.view}[{ys}, {self.context_attribute} = "
                f"{self.context_value!r}] ⊆ {self.parent}[{xs}, "
                f"{self.parent_context_attribute}]")
