"""Candidate-view inference — ``InferCandidateViews`` (paper Section 3.2).

Three generators are provided:

* :class:`NaiveInfer` (Section 3.2.1) — every categorical attribute yields a
  view family with one view per value; under ``EarlyDisjuncts`` families for
  value partitionings are enumerated as well.
* :class:`SrcClassInfer` (Section 3.2.3) — a classifier trained on *source*
  values of each non-categorical attribute h predicts the categorical
  attribute l; families whose classifier beats the naive majority baseline
  significantly (Section 3.2.2) are returned.
* :class:`TgtClassInfer` (Section 3.2.4, Figure 7) — source values are first
  tagged with the most similar *target column* by per-type classifiers
  trained on the target schema; the tag-to-label association is then scored
  the same way.

The early-disjunct extension (Section 3.3) merges the most frequently
confused label pair, retrains, and keeps merged families that test as
well-clustered — producing views over disjunctive conditions
``l in {v1, ..., vk}``.

Batch inference
---------------
With ``ContextMatchConfig.use_batch_inference`` (the default) the
ClusteredViewGen loop runs on a :class:`FamilyAssessor`: the classifier is
taught *once* per (h, l) attribute pair with the original label values,
and every family — the base family and each early-disjunct merge — is
assessed by *regrouping* those sufficient statistics
(:meth:`~repro.classifiers.base.Classifier.regrouped`: an O(labels)
count-vector merge, mirroring the profiling subsystem's partition-cell
merges) and classifying the test column through the classifier's batch
path.  Results are bit-identical to the legacy per-family retrain path
(:func:`assess_family`), which stays as the equivalence reference;
:class:`InferenceStats` counts the work for the engine's stage reports.
"""

from __future__ import annotations

import abc
import dataclasses
from collections import Counter
from typing import Any, Callable, Hashable, Iterator, Sequence

import numpy as np

from ..classifiers.base import Classifier
from ..classifiers.majority import MajorityClassifier
from ..classifiers.metrics import (ConfusionMatrix, evaluate_classifier,
                                   normalized_error_pairs)
from ..classifiers.naive_bayes import NaiveBayesClassifier
from ..classifiers.numeric import GaussianClassifier
from ..classifiers.significance import classifier_significance
from ..classifiers.target import TargetClassifierSet
from ..matching.standard import AttributeMatch
from ..relational.instance import Database, Relation
from ..relational.types import DataType
from ..relational.views import ViewFamily
from ..sampling import systematic_thin
from .categorical import (CategoricalPolicy, categorical_attributes,
                          non_categorical_attributes)
from .model import ContextMatchConfig

__all__ = ["InferenceContext", "InferenceStats", "CandidateViewGenerator",
           "NaiveInfer", "SrcClassInfer", "TgtClassInfer", "FamilyAssessor",
           "make_generator", "set_partitions"]

#: NaiveInfer enumerates every partition of the value set only up to this
#: many values (Bell(6) = 203 partitions); beyond it, single-merge families
#: keep the candidate count polynomial.
MAX_EXACT_PARTITION_VALUES = 6


@dataclasses.dataclass
class InferenceStats:
    """Inference-side work counters for one run's stage reports.

    ``values_classified`` counts individual value classifications issued
    through the batch entry points, ``batch_calls`` the number of batched
    invocations carrying them, and ``merges_without_retrain`` the
    early-disjunct group merges assessed by statistics regrouping instead
    of re-teaching a fresh classifier.
    """

    values_classified: int = 0
    batch_calls: int = 0
    merges_without_retrain: int = 0

    def as_counts(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    def since(self, before: "InferenceStats") -> dict[str, int]:
        """Counter deltas relative to an earlier snapshot."""
        now = self.as_counts()
        then = before.as_counts()
        return {key: now[key] - then.get(key, 0) for key in now}

    def snapshot(self) -> "InferenceStats":
        return dataclasses.replace(self)


@dataclasses.dataclass
class InferenceContext:
    """Shared state for one ``ContextMatch`` run.

    Holds the RNG for train/test partitioning, the categorical policy, and
    (for ``TgtClassInfer``) the per-type target classifiers, which are
    trained once per run on the target schema.
    """

    config: ContextMatchConfig
    rng: np.random.Generator
    target: Database
    policy: CategoricalPolicy = dataclasses.field(default_factory=CategoricalPolicy)
    _target_classifiers: TargetClassifierSet | None = None
    #: Shared memo of target-column tags keyed by (type family, value):
    #: the disjunct-merge loop builds a fresh classifier per retraining, but
    #: the expensive value -> target-column tagging never changes.
    tag_cache: dict = dataclasses.field(default_factory=dict)
    #: Per-run inference work counters (batch calls, classified values,
    #: retrain-free merges), surfaced by the infer-views stage report.
    stats: InferenceStats = dataclasses.field(default_factory=InferenceStats)

    @property
    def target_classifiers(self) -> TargetClassifierSet:
        if self._target_classifiers is None:
            self._target_classifiers = TargetClassifierSet.train(
                self.target, sample_limit=self.config.standard.sample_limit)
        return self._target_classifiers


def set_partitions(values: Sequence[Hashable]) -> Iterator[list[list[Hashable]]]:
    """Enumerate all set partitions of *values* (Bell-number many).

    Standard recursive construction: each new element either joins an
    existing block or starts its own.  Deterministic order.
    """
    values = list(values)
    if not values:
        yield []
        return

    def recurse(index: int, blocks: list[list[Hashable]]) -> Iterator[list[list[Hashable]]]:
        if index == len(values):
            yield [list(b) for b in blocks]
            return
        value = values[index]
        for block in blocks:
            block.append(value)
            yield from recurse(index + 1, blocks)
            block.pop()
        blocks.append([value])
        yield from recurse(index + 1, blocks)
        blocks.pop()

    yield from recurse(0, [])


class CandidateViewGenerator(abc.ABC):
    """Interface of ``InferCandidateViews`` (Figure 5, line 5)."""

    name: str = "generator"

    def infer(self, relation: Relation, accepted: Sequence[AttributeMatch],
              ctx: InferenceContext,
              *, exclude_attributes: frozenset[str] = frozenset()) -> list[ViewFamily]:
        """Candidate view families for *relation*.

        Per Figure 5, no conditions are returned when the accepted match
        list for the table is empty.  ``exclude_attributes`` removes
        attributes already used in a parent condition (conjunctive search,
        Section 3.5).
        """
        if not accepted:
            return []
        return self._infer(relation, ctx, exclude_attributes)

    @abc.abstractmethod
    def _infer(self, relation: Relation, ctx: InferenceContext,
               exclude: frozenset[str]) -> list[ViewFamily]:
        """Generator-specific inference; *relation* has a non-empty match list."""


# ---------------------------------------------------------------------------
# NaiveInfer (Section 3.2.1)
# ---------------------------------------------------------------------------
class NaiveInfer(CandidateViewGenerator):
    """Views for every value of every categorical attribute, unfiltered."""

    name = "naive"

    def _infer(self, relation: Relation, ctx: InferenceContext,
               exclude: frozenset[str]) -> list[ViewFamily]:
        families: list[ViewFamily] = []
        for label_attr in categorical_attributes(relation, ctx.policy):
            if label_attr in exclude:
                continue
            values = relation.distinct(label_attr)
            base = ViewFamily.simple(relation.name, label_attr, values)
            families.append(base)
            if ctx.config.early_disjuncts and len(values) > 1:
                families.extend(self._disjunctive_families(relation.name,
                                                           label_attr, values))
        return families

    @staticmethod
    def _disjunctive_families(table: str, attribute: str,
                              values: list[Any]) -> list[ViewFamily]:
        """Partition families for EarlyDisjuncts.

        For small value sets every partitioning is enumerated, exactly as
        Section 3.2.1 describes; for larger sets (where the Bell number
        explodes) only single-pair merges of the base family are produced.
        """
        families: list[ViewFamily] = []
        if len(values) <= MAX_EXACT_PARTITION_VALUES:
            for blocks in set_partitions(values):
                if len(blocks) in (1, len(values)):
                    continue  # no-information partition / base family
                families.append(ViewFamily(table, attribute, blocks))
        else:
            for i in range(len(values)):
                for j in range(i + 1, len(values)):
                    merged = [[values[i], values[j]]] + [
                        [v] for k, v in enumerate(values) if k not in (i, j)]
                    families.append(ViewFamily(table, attribute, merged))
        return families


# ---------------------------------------------------------------------------
# ClusteredViewGen machinery (Section 3.2.2, Figure 6)
# ---------------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class AssessmentResult:
    """Outcome of scoring one (h, l) candidate family."""

    matrix: ConfusionMatrix
    confidence: float  # Φ((c − µ)/σ) of the significance test

    def significant(self, threshold: float) -> bool:
        return self.confidence > threshold


def assess_family(family: ViewFamily, classifier: Classifier,
                  train_pairs: Sequence[tuple[Any, Any]],
                  test_pairs: Sequence[tuple[Any, Any]]) -> AssessmentResult:
    """``doTraining`` + ``doTesting`` + score significance for one family.

    Labels are the family's groups (merged tokens after disjunct merging):
    the classifier is trained on ``h-value -> group(l-value)`` and its
    correct-classification count is compared against the binomial null of
    the majority baseline ``CNaive``.
    """
    naive = MajorityClassifier()
    for value, label in train_pairs:
        group = family.group_label(label)
        classifier.teach(value, group)
        naive.teach(value, group)
    matrix = evaluate_classifier(
        classifier,
        ((value, family.group_label(label)) for value, label in test_pairs))
    significance = classifier_significance(
        matrix.correct, matrix.total, naive.majority_fraction)
    return AssessmentResult(matrix, significance.confidence)


class FamilyAssessor:
    """Batch ``doTraining`` + ``doTesting`` for every family over one
    (h, l) attribute pair.

    The classifier (and the ``CNaive`` baseline) is taught exactly once,
    with the *original* label values.  Assessing a family then regroups
    those sufficient statistics to the family's groups — for Naive Bayes
    an O(labels) sum of token-count rows, for the Gaussian an
    order-preserving merge of value lists — and classifies the test column
    through the classifier's batch path.  Both steps are bit-identical to
    :func:`assess_family` with a freshly retrained classifier, so the
    early-disjunct merge loop (Section 3.3) walks the same trajectory with
    no re-teaching.
    """

    def __init__(self, classifier: Classifier,
                 train_pairs: Sequence[tuple[Any, Any]],
                 test_pairs: Sequence[tuple[Any, Any]],
                 *, stats: InferenceStats | None = None):
        if not classifier.supports_regrouping:
            raise TypeError(
                f"{type(classifier).__name__} does not support statistics "
                "regrouping; use assess_family instead")
        self._test_pairs = list(test_pairs)
        self._test_values = [value for value, _ in self._test_pairs]
        self._stats = stats
        values = [value for value, _ in train_pairs]
        labels = [label for _, label in train_pairs]
        classifier.teach_many(values, labels)
        self._classifier = classifier
        naive = MajorityClassifier()
        naive.teach_many(values, labels)
        self._naive = naive
        self._label_values = (set(labels)
                              | {label for _, label in self._test_pairs})

    def assess(self, family: ViewFamily, *,
               merged: bool = False) -> AssessmentResult:
        """Assess one family grouping; *merged* marks early-disjunct merge
        steps for the ``merges_without_retrain`` counter."""
        mapping = {label: family.group_label(label)
                   for label in self._label_values}
        grouped = self._classifier.regrouped(mapping)
        naive = self._naive.regrouped(mapping)
        predictions = grouped.classify_many(self._test_values)
        matrix = ConfusionMatrix()
        for (_, label), predicted in zip(self._test_pairs, predictions):
            matrix.record(mapping[label], predicted)
        significance = classifier_significance(
            matrix.correct, matrix.total, naive.majority_fraction)
        if self._stats is not None:
            self._stats.batch_calls += 1
            self._stats.values_classified += len(self._test_values)
            if merged:
                self._stats.merges_without_retrain += 1
        return AssessmentResult(matrix, significance.confidence)


class _PairExtractor:
    """(h, l) training-pair extraction over one train/test split.

    ``ClusteredViewGen`` pairs every non-categorical attribute h with
    every categorical attribute l, so per-pair filtering would run
    ``is_missing`` over each column once per *pairing*; the relation's
    native presence arrays run it once per (attribute, row), and the
    AND of the two masks selects the surviving rows in index space so
    only those are gathered as Python objects.  The produced pair lists
    are identical to zip-and-filter over the raw columns.
    """

    def __init__(self, relation: Relation):
        self._relation = relation

    def pairs(self, h_attr: str, label_attr: str) -> list[tuple[Any, Any]]:
        """(h, l) values over the rows where both are present."""
        relation = self._relation
        rows = np.flatnonzero(relation.presence_array(h_attr)
                              & relation.presence_array(label_attr))
        h_values = relation.column_store(h_attr).gather(rows)
        l_values = relation.column_store(label_attr).gather(rows)
        return list(zip(h_values, l_values))


class ClusteredViewGenBase(CandidateViewGenerator):
    """Shared Algorithm ClusteredViewGen (Figure 6) skeleton.

    Subclasses provide :meth:`make_classifier` — a fresh classifier for a
    given non-categorical attribute h (``SrcClassInfer`` trains it on source
    values; ``TgtClassInfer`` routes through the target-column tagger).
    """

    def _infer(self, relation: Relation, ctx: InferenceContext,
               exclude: frozenset[str]) -> list[ViewFamily]:
        config = ctx.config
        cats = [a for a in categorical_attributes(relation, ctx.policy)
                if a not in exclude]
        noncats = non_categorical_attributes(relation, ctx.policy)
        if not cats or not noncats or len(relation) < 4:
            return []
        train, test = relation.split(config.train_fraction, ctx.rng)
        train_extractor = _PairExtractor(train)
        test_extractor = _PairExtractor(test)
        best: dict[ViewFamily, float] = {}
        for label_attr in cats:
            values = relation.distinct(label_attr)
            if len(values) < 2:
                continue
            base_family = ViewFamily.simple(relation.name, label_attr, values)
            for h_attr in noncats:
                dtype = relation.schema.dtype(h_attr)
                train_pairs = systematic_thin(
                    train_extractor.pairs(h_attr, label_attr),
                    config.max_train)
                test_pairs = systematic_thin(
                    test_extractor.pairs(h_attr, label_attr), config.max_test)
                if len(train_pairs) < 2 or len(test_pairs) < 1:
                    continue
                classifier = self.make_classifier(dtype, ctx)
                assessor: FamilyAssessor | None = None
                if (config.use_batch_inference
                        and classifier.supports_regrouping):
                    assessor = FamilyAssessor(classifier, train_pairs,
                                              test_pairs, stats=ctx.stats)
                    result = assessor.assess(base_family)
                else:
                    result = assess_family(base_family, classifier,
                                           train_pairs, test_pairs)
                if result.significant(config.significance_threshold):
                    quality = max(best.get(base_family, 0.0), result.confidence)
                    best[base_family] = quality
                if config.early_disjuncts:
                    for family, conf in self._merged_families(
                            base_family, result, dtype, ctx,
                            train_pairs, test_pairs, assessor=assessor):
                        best[family] = max(best.get(family, 0.0), conf)
        return [
            ViewFamily(f.table, f.attribute, f.groups, quality=q)
            for f, q in best.items()
        ]

    def _merged_families(self, family: ViewFamily, result: AssessmentResult,
                         dtype: DataType, ctx: InferenceContext,
                         train_pairs: Sequence[tuple[Any, Any]],
                         test_pairs: Sequence[tuple[Any, Any]],
                         *, assessor: "FamilyAssessor | None" = None,
                         ) -> Iterator[tuple[ViewFamily, float]]:
        """Early-disjunct error-pair merging loop (Section 3.3).

        Merge the most frequent (frequency-normalized) confusion pair,
        retrain and retest; keep merged families that test well-clustered.
        Repeats until the test is error-free or only one group remains.
        With a :class:`FamilyAssessor` (batch inference) the retrain is a
        statistics regroup — same results, no re-teaching.
        """
        config = ctx.config
        current = family
        current_result = result
        while len(current.groups) > 1:
            ranked = normalized_error_pairs(current_result.matrix)
            if not ranked:
                break
            pair = next(iter(ranked))[0]
            group_a, group_b = tuple(pair)
            # Merge via representative raw values of the two groups.
            rep_a = next(iter(group_a))
            rep_b = next(iter(group_b))
            merged = current.merge(rep_a, rep_b)
            if len(merged.groups) == len(current.groups):
                break  # already together — cannot make progress
            if assessor is not None:
                merged_result = assessor.assess(merged, merged=True)
            else:
                merged_result = assess_family(
                    merged, self.make_classifier(dtype, ctx),
                    train_pairs, test_pairs)
            if (len(merged.groups) > 1
                    and merged_result.significant(config.significance_threshold)):
                yield (ViewFamily(merged.table, merged.attribute, merged.groups,
                                  quality=merged_result.confidence),
                       merged_result.confidence)
            current, current_result = merged, merged_result

    @abc.abstractmethod
    def make_classifier(self, dtype: DataType, ctx: InferenceContext) -> Classifier:
        """A fresh classifier ``Ch`` for a non-categorical attribute of type
        *dtype*."""


# ---------------------------------------------------------------------------
# SrcClassInfer (Section 3.2.3)
# ---------------------------------------------------------------------------
class SrcClassInfer(ClusteredViewGenBase):
    """Classifier trained directly on source values: Naive Bayes on 3-grams
    for text, a Gaussian statistical classifier for numeric attributes."""

    name = "src"

    def make_classifier(self, dtype: DataType, ctx: InferenceContext) -> Classifier:
        if dtype.is_numeric:
            return GaussianClassifier()
        return NaiveBayesClassifier(q=3)


# ---------------------------------------------------------------------------
# TgtClassInfer (Section 3.2.4)
# ---------------------------------------------------------------------------
class _TgtTagClassifier(Classifier):
    """bestCAT ∘ C_D^T: tag source values with target columns, then map tags
    to categorical values by the acc·prec score of Section 3.2.4."""

    supports_regrouping = True

    def __init__(self, tagger: TargetClassifierSet, dtype: DataType,
                 tag_cache: dict | None = None,
                 stats: InferenceStats | None = None):
        self._tagger = tagger
        self._dtype = dtype
        self._tbag: Counter = Counter()          # (tag g, label v) -> count
        self._label_counts: Counter = Counter()  # v -> count
        self._tag_counts: Counter = Counter()    # g -> count
        self._best: dict[Any, Hashable] | None = None
        self._tag_cache: dict = tag_cache if tag_cache is not None else {}
        self._stats = stats
        #: Flat value -> tag view of ``_tag_cache`` for this classifier's
        #: (dtype, tagger), shared across :meth:`regrouped` copies — the
        #: batch path's per-value lookup skips the qualified-key tuple.
        #: Keyed by raw value, with the same ==/hash collision semantics
        #: as the qualified key (the family component is fixed here).
        self._value_tags: dict = {}

    def _tag_key(self, value: Any) -> tuple:
        return (self._dtype.family,
                value if isinstance(value, Hashable) else str(value))

    def _tag(self, value: Any) -> str | None:
        key = self._tag_key(value)
        if key not in self._tag_cache:
            self._tag_cache[key] = self._tagger.classify(value, self._dtype)
        return self._tag_cache[key]

    def _tag_many(self, values: Sequence[Any]) -> list[str | None]:
        """Tags for *values*, bulk-filling the shared tag cache.

        Uncached distinct values go through the tagger's batch path in
        first-appearance order, so cache contents (including the legacy
        key-collision semantics of :meth:`_tag`) match per-value tagging.
        """
        value_tags = self._value_tags
        tags: list[str | None] = [None] * len(values)
        missing_positions: list[int] = []
        for i, value in enumerate(values):
            try:
                tags[i] = value_tags[value]
            except KeyError:
                missing_positions.append(i)
            except TypeError:  # unhashable — resolve via the slow path
                tags[i] = self._tag(values[i])
        if not missing_positions:
            return tags
        queued: set = set()
        batch_keys: list = []
        batch_values: list[Any] = []
        resolve: list[int] = []
        for i in missing_positions:
            key = self._tag_key(values[i])
            if key in self._tag_cache or key in queued:
                resolve.append(i)
                continue
            queued.add(key)
            batch_keys.append(key)
            batch_values.append(values[i])
            resolve.append(i)
        if batch_values:
            predicted = self._tagger.classify_many(batch_values, self._dtype)
            for key, tag in zip(batch_keys, predicted):
                self._tag_cache[key] = tag
            if self._stats is not None:
                self._stats.batch_calls += 1
                self._stats.values_classified += len(batch_values)
        for i in resolve:
            tag = self._tag_cache[self._tag_key(values[i])]
            tags[i] = tag
            value_tags[values[i]] = tag
        return tags

    def teach(self, value: Any, label: Hashable) -> None:
        tag = self._tag(value)
        self._label_counts[label] += 1
        if tag is not None:
            self._tbag[(tag, label)] += 1
            self._tag_counts[tag] += 1
        self._best = None

    def teach_many(self, values: Sequence[Any],
                   labels: Sequence[Hashable]) -> None:
        """Batch teach: bulk tagging plus a *single* ``_best`` memo
        invalidation (per-value :meth:`teach` invalidates every call)."""
        if len(values) != len(labels):
            raise ValueError(
                f"teach_many needs parallel sequences, got {len(values)} "
                f"values vs {len(labels)} labels")
        tags = self._tag_many(values)
        for tag, label in zip(tags, labels):
            self._label_counts[label] += 1
            if tag is not None:
                self._tbag[(tag, label)] += 1
                self._tag_counts[tag] += 1
        self._best = None

    @property
    def labels(self) -> frozenset[Hashable]:
        return frozenset(self._label_counts)

    def _best_cat(self) -> dict[Any, Hashable]:
        """bestCAT(g) = argmax_v acc(g,v)·prec(g,v); ties favour the more
        common v, then a deterministic order."""
        if self._best is not None:
            return self._best
        best: dict[Any, Hashable] = {}
        by_tag: dict[str, list[Hashable]] = {}
        for (tag, label) in self._tbag:
            by_tag.setdefault(tag, []).append(label)
        for tag, labels in by_tag.items():
            def score(label: Hashable) -> float:
                joint = self._tbag[(tag, label)]
                acc = joint / self._label_counts[label]
                prec = joint / self._tag_counts[tag]
                return acc * prec
            best[tag] = max(labels, key=lambda lab: (
                score(lab), self._label_counts[lab], repr(lab)))
        self._best = best
        return best

    def _arbitrary_label(self) -> Hashable | None:
        if not self._label_counts:
            return None
        return max(self._label_counts,
                   key=lambda lab: (self._label_counts[lab], repr(lab)))

    def classify(self, value: Any) -> Hashable | None:
        tag = self._tag(value)
        best = self._best_cat()
        if tag is None or tag not in best:
            # "an arbitrary categorical value is selected" — deterministic:
            # the most common label.
            return self._arbitrary_label()
        return best[tag]

    def classify_many(self, values: Sequence[Any]) -> list[Hashable | None]:
        """Batch classification: one bulk tag pass, one ``bestCAT`` table."""
        tags = self._tag_many(values)
        best = self._best_cat()
        fallback = self._arbitrary_label()
        return [best[tag] if tag is not None and tag in best else fallback
                for tag in tags]

    def regrouped(self, mapping) -> "_TgtTagClassifier":
        """The classifier teaching the same values under group labels would
        have produced: (tag, label) joint counts summed per group."""
        other = _TgtTagClassifier(self._tagger, self._dtype,
                                  tag_cache=self._tag_cache,
                                  stats=self._stats)
        for (tag, label), count in self._tbag.items():
            other._tbag[(tag, mapping[label])] += count
        for label, count in self._label_counts.items():
            other._label_counts[mapping[label]] += count
        other._tag_counts = Counter(self._tag_counts)
        other._value_tags = self._value_tags  # same (tagger, dtype) view
        return other


class TgtClassInfer(ClusteredViewGenBase):
    """Classify source values by which target column they resemble, then
    correlate the tags with the categorical attributes."""

    name = "tgt"

    def make_classifier(self, dtype: DataType, ctx: InferenceContext) -> Classifier:
        return _TgtTagClassifier(ctx.target_classifiers, dtype,
                                 tag_cache=ctx.tag_cache, stats=ctx.stats)


def make_generator(kind: str) -> CandidateViewGenerator:
    """Factory mapping config strings to generator instances."""
    generators: dict[str, Callable[[], CandidateViewGenerator]] = {
        "naive": NaiveInfer,
        "src": SrcClassInfer,
        "tgt": TgtClassInfer,
    }
    try:
        return generators[kind]()
    except KeyError:
        raise ValueError(f"unknown inference kind {kind!r}; expected one of "
                         f"{sorted(generators)}") from None
