"""Workload generators, the scenario registry and the perturbation toolkit.

The paper's experimental study (Section 5) used two synthetic families;
this package grows that into a registry of named, parameterized scenarios
spanning five domains, each composable with ground-truth-preserving
perturbations — the corpus behind the golden-metrics regression tier
(``pytest -m golden``, ``repro scenarios``).

Families (:func:`~repro.datagen.registry.register_family`):

* ``retail`` — the paper's Inventory data set: combined ``items`` source
  vs separated book/music targets.  Shared knobs: ``size`` (source rows),
  ``gamma`` (``ItemType`` cardinality).  Family knobs: ``target``
  (``ryan``/``aaron``/``barrett``), ``n_target``, ``correlated`` + ``rho``
  (Section 5.3 chameleon attributes), ``pad`` (Section 5.5 noise columns);
* ``grades`` — the attribute-normalization data set (narrow exam rows vs
  wide per-exam columns).  ``size`` = students, ``gamma`` = exams.  Knobs:
  ``sigma``, ``spurious_categoricals``;
* ``clinical`` — combined ``encounters`` vs admissions / clinic-visit
  tables, contextual on ``VisitType``.  Knobs: ``n_target``;
* ``events`` — combined ``events`` listing vs concert / conference
  tables, contextual on ``EventKind``.  Knobs: ``n_target``;
* ``realestate`` — combined ``listings`` vs house / condo tables,
  contextual on ``PropertyKind`` (the Section 5.5 noise domain promoted
  to a full workload).  Knobs: ``n_target``;
* ``routing`` — repository-routing scenarios: delegates to an inner hub
  family chosen by the ``hub`` knob, so each scenario's target doubles
  as one :mod:`repro.repository` hub.  :func:`make_routing_fleet` builds
  the full M-sources × K-hubs grid with ground-truth hub labels;
* ``ingestion`` — the retail workload arriving as a messy CSV export
  (renamed headers, ``$``-prices, unit-suffixed quantities, prefixed
  SKUs, plural vocabulary) that is round-tripped through the CSV codec
  and normalized (:mod:`repro.datagen.ingestion`) before matching.

Registered scenarios (:func:`~repro.datagen.registry.scenario_names`) pair
every family with its base form plus three perturbation variants:
``-nulls`` (null injection), ``-drift`` (value-format drift + attribute
abbreviation) and ``-scrambled`` (row shuffling + vocabulary-overlap
shrinkage).  Perturbation kinds (:mod:`repro.datagen.perturb`): ``nulls``,
``format_drift``, ``rename``, ``shrink_vocab``, ``shuffle`` — all
ground-truth-preserving and seeded.

:class:`GroundTruth` carries each workload's correct contextual matches.
"""

from .clinical import (ClinicalConfig, ClinicalWorkload,
                       make_clinical_workload, visit_type_labels)
from .events import (EventsConfig, EventsWorkload, event_kind_labels,
                     make_events_workload)
from .grades import GradesConfig, GradesWorkload, exam_mean, make_grades_workload
from .ground_truth import CorrectContextualMatch, GroundTruth
from .inventory import (RetailConfig, RetailWorkload, TARGET_LAYOUTS,
                        add_correlated_attributes, gamma_labels,
                        make_retail_workload, pad_workload)
from .perturb import (PERTURBATIONS, FormatDrift, InjectNulls, Perturbation,
                      RenameAttributes, ShrinkVocabulary, ShuffleRows,
                      Workload, make_perturbation)
from .realestate import (RealEstateConfig, RealEstateWorkload,
                         make_realestate_relation, make_realestate_workload,
                         property_kind_labels, realestate_column)
from .registry import (DEFAULT_PERTURBATION_VARIANTS, PerturbationSpec,
                       ScenarioSpec, build_scenario, family_names,
                       get_scenario, register_family, register_scenario,
                       registered_scenarios, scenario_names,
                       workload_fingerprint)
from .ingestion import (FEED_HEADERS, NO_STRIP_WORDS, PLURAL_MAP,
                        TAG_VOCABULARY, make_ingestion_workload,
                        make_messy_feed, normalize_feed, normalize_header,
                        normalize_product_name, parse_currency,
                        parse_quantity, parse_sku, singularize)
from .routing import (ROUTING_HUB_FAMILIES, RoutedSourceCase, RoutingFleet,
                      make_routing_fleet)

__all__ = [
    # retail
    "make_retail_workload",
    "RetailConfig",
    "RetailWorkload",
    "TARGET_LAYOUTS",
    "add_correlated_attributes",
    "pad_workload",
    "gamma_labels",
    # grades
    "make_grades_workload",
    "GradesConfig",
    "GradesWorkload",
    "exam_mean",
    # clinical
    "make_clinical_workload",
    "ClinicalConfig",
    "ClinicalWorkload",
    "visit_type_labels",
    # events
    "make_events_workload",
    "EventsConfig",
    "EventsWorkload",
    "event_kind_labels",
    # real estate
    "make_realestate_relation",
    "realestate_column",
    "make_realestate_workload",
    "RealEstateConfig",
    "RealEstateWorkload",
    "property_kind_labels",
    # ground truth
    "GroundTruth",
    "CorrectContextualMatch",
    # perturbations
    "Workload",
    "Perturbation",
    "InjectNulls",
    "FormatDrift",
    "RenameAttributes",
    "ShrinkVocabulary",
    "ShuffleRows",
    "PERTURBATIONS",
    "make_perturbation",
    # registry
    "ScenarioSpec",
    "PerturbationSpec",
    "register_family",
    "family_names",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "registered_scenarios",
    "build_scenario",
    "workload_fingerprint",
    "DEFAULT_PERTURBATION_VARIANTS",
    # repository routing
    "ROUTING_HUB_FAMILIES",
    "RoutedSourceCase",
    "RoutingFleet",
    "make_routing_fleet",
    # messy-CSV ingestion
    "FEED_HEADERS",
    "PLURAL_MAP",
    "NO_STRIP_WORDS",
    "TAG_VOCABULARY",
    "singularize",
    "normalize_header",
    "normalize_product_name",
    "parse_currency",
    "parse_quantity",
    "parse_sku",
    "make_messy_feed",
    "normalize_feed",
    "make_ingestion_workload",
]
