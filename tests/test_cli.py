"""End-to-end tests for the ``python -m repro`` CLI."""

import json

import pytest

from repro import __version__
from repro.cli import build_parser, config_from_args, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_defaults(self):
        args = build_parser().parse_args(["generate", "retail", "/tmp/x"])
        assert args.gamma == 4 and args.target == "ryan"

    def test_match_flags(self):
        args = build_parser().parse_args(
            ["match", "a", "b", "--inference", "src", "--late-disjuncts",
             "--tau", "0.4"])
        assert args.inference == "src"
        assert args.late_disjuncts
        assert args.tau == 0.4

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_match_many_parses(self):
        args = build_parser().parse_args(
            ["match-many", "tgt", "s1", "s2", "--json"])
        assert args.target == "tgt"
        assert args.sources == ["s1", "s2"]
        assert args.json

    def test_jobs_flag_rejects_non_positive(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["match-many", "tgt", "s1",
                                       "--jobs", "0"])
        assert "must be >= 1" in capsys.readouterr().err


class TestConfigResolution:
    def test_defaults_without_flags_or_file(self):
        args = build_parser().parse_args(["match", "a", "b"])
        config = config_from_args(args)
        assert config.tau == 0.5
        assert config.inference == "tgt"
        assert config.early_disjuncts

    def test_config_file_is_loaded(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"tau": 0.7, "inference": "src",
                                    "early_disjuncts": False}))
        args = build_parser().parse_args(["match", "a", "b",
                                          "--config", str(path)])
        config = config_from_args(args)
        assert config.tau == 0.7
        assert config.inference == "src"
        assert not config.early_disjuncts

    def test_flags_override_config_file(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps({"tau": 0.7, "omega": 12.0}))
        args = build_parser().parse_args(
            ["match", "a", "b", "--config", str(path), "--tau", "0.3"])
        config = config_from_args(args)
        assert config.tau == 0.3     # explicit flag wins
        assert config.omega == 12.0  # untouched file value survives

    def test_bad_config_file_exits_cleanly(self, tmp_path):
        args = build_parser().parse_args(
            ["match", "a", "b", "--config", str(tmp_path / "missing.json")])
        with pytest.raises(SystemExit) as excinfo:
            config_from_args(args)
        assert "cannot load --config" in str(excinfo.value)
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        args = build_parser().parse_args(["match", "a", "b",
                                          "--config", str(bad)])
        with pytest.raises(SystemExit):
            config_from_args(args)

    def test_nested_standard_config_round_trips(self, tmp_path):
        path = tmp_path / "cfg.json"
        path.write_text(json.dumps(
            {"standard": {"sample_limit": 123}}))
        args = build_parser().parse_args(["match", "a", "b",
                                          "--config", str(path)])
        assert config_from_args(args).standard.sample_limit == 123


class TestEndToEnd:
    def test_generate_then_match(self, tmp_path, capsys):
        out = tmp_path / "wl"
        assert main(["generate", "retail", str(out), "--rows", "300",
                     "--gamma", "2", "--seed", "7"]) == 0
        assert (out / "src" / "items.csv").exists()
        assert (out / "tgt" / "books.csv").exists()

        rc = main(["match", str(out / "src"), str(out / "tgt"),
                   "--inference", "src", "--seed", "3"])
        assert rc == 0
        output = capsys.readouterr().out
        assert "contextual" in output
        assert "WHERE" in output  # at least one contextual match printed

    def test_generate_then_map(self, tmp_path, capsys):
        out = tmp_path / "wl"
        main(["generate", "grades", str(out), "--sigma", "8", "--seed", "5"])
        migrated = tmp_path / "migrated"
        rc = main(["map", str(out / "src"), str(out / "tgt"),
                   "--inference", "src", "--late-disjuncts", "--seed", "3",
                   "--out", str(migrated)])
        assert rc == 0
        assert (migrated / "grades_wide.csv").exists()
        output = capsys.readouterr().out
        assert "map -> grades_wide" in output

    def test_match_json_includes_run_report(self, tmp_path, capsys):
        """Acceptance: RunReport with all five stage timings in --json."""
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match", str(out / "src"), str(out / "tgt"),
                   "--inference", "src", "--seed", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        report = payload["report"]
        assert [s["name"] for s in report["stages"]] == [
            "standard-match", "infer-views", "score-candidates", "select",
            "conjunctive-refine"]
        assert all(s["elapsed_seconds"] >= 0.0 for s in report["stages"])
        assert payload["standard_matches"]

    def test_match_many(self, tmp_path, capsys):
        out1 = tmp_path / "wl1"
        out2 = tmp_path / "wl2"
        main(["generate", "retail", str(out1), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        main(["generate", "retail", str(out2), "--rows", "200",
              "--gamma", "2", "--seed", "8"])
        capsys.readouterr()
        rc = main(["match-many", str(out1 / "tgt"), str(out1 / "src"),
                   str(out2 / "src"), "--inference", "src", "--seed", "2",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["target"] == str(out1 / "tgt")
        assert len(payload["results"]) == 2
        for entry in payload["results"]:
            assert entry["matches"]
            # Batch runs reuse the shared prepared target.
            assert entry["report"]["target_prepared"]
        assert payload["results"][0]["source"] == str(out1 / "src")

    def test_match_many_jobs_json(self, tmp_path, capsys):
        """Tier-1 smoke of the 2-worker process fan-out: same result shape
        as the serial path plus the executor throughput section."""
        out1 = tmp_path / "wl1"
        out2 = tmp_path / "wl2"
        main(["generate", "retail", str(out1), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        main(["generate", "retail", str(out2), "--rows", "200",
              "--gamma", "2", "--seed", "8"])
        capsys.readouterr()
        args = ["match-many", str(out1 / "tgt"), str(out1 / "src"),
                str(out2 / "src"), "--inference", "src", "--seed", "2",
                "--json"]
        assert main(args) == 0
        serial = json.loads(capsys.readouterr().out)
        assert main(args + ["--jobs", "2"]) == 0
        parallel = json.loads(capsys.readouterr().out)
        executor = parallel.pop("executor")
        assert executor["backend"] == "process"
        assert executor["workers"] == 2
        assert executor["tasks"] == 2
        assert len(executor["task_seconds"]) == 2
        assert executor["prepare_transfer_bytes"] > 0
        # Identical matches in identical order, serial vs process.
        assert [r["matches"] for r in parallel["results"]] \
            == [r["matches"] for r in serial["results"]]
        assert all(r["report"]["target_prepared"]
                   for r in parallel["results"])

    def test_match_many_jobs_one_is_serial(self, tmp_path, capsys):
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match-many", str(out / "tgt"), str(out / "src"),
                   "--inference", "src", "--seed", "2", "--jobs", "1",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["executor"]["backend"] == "serial"
        assert payload["executor"]["prepare_transfer_bytes"] == 0

    def test_match_many_text_output(self, tmp_path, capsys):
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match-many", str(out / "tgt"), str(out / "src"),
                   "--inference", "src", "--seed", "2"])
        assert rc == 0
        output = capsys.readouterr().out
        assert f"== {out / 'src'}" in output
        assert "contextual" in output

    def test_scenarios_list(self, capsys):
        from repro.datagen import scenario_names

        assert main(["scenarios", "list"]) == 0
        output = capsys.readouterr().out
        for name in scenario_names():
            assert name in output

    def test_scenarios_list_json(self, capsys):
        from repro.datagen import ScenarioSpec, scenario_names

        assert main(["scenarios", "list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [s["name"] for s in payload] == scenario_names()
        # Every listed spec round-trips to a buildable ScenarioSpec.
        assert all(isinstance(ScenarioSpec.from_dict(s), ScenarioSpec)
                   for s in payload)

    def test_scenarios_run_text(self, capsys):
        assert main(["scenarios", "run", "events", "--size", "80"]) == 0
        output = capsys.readouterr().out
        assert "events" in output
        assert "acc=" in output and "prec=" in output

    def test_scenarios_run_json_schema(self, capsys):
        """Acceptance: `repro scenarios run <name> --json` emits a
        schema-valid ScenarioResult report."""
        from repro.evaluation import scenario_result_from_dict

        rc = main(["scenarios", "run", "retail-nulls", "--size", "120",
                   "--seed", "4", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "retail-nulls"
        assert payload["spec"]["size"] == 120
        assert payload["spec"]["seed"] == 4
        for key in ("accuracy", "precision", "fmeasure", "n_found",
                    "n_correct_found", "n_truth"):
            assert key in payload["metrics"]
        assert set(payload["counters"]) == {
            "profile_hits", "profile_misses", "partitions_built",
            "partition_hits", "profiles_merged"}
        assert [s["name"] for s in payload["report"]["stages"]] == [
            "standard-match", "infer-views", "score-candidates", "select",
            "conjunctive-refine"]
        restored = scenario_result_from_dict(payload)
        assert restored.scenario == "retail-nulls"

    def test_match_json_retrieval_section(self, tmp_path, capsys):
        """Satellite: matching --json output carries a `retrieval`
        section plus the library version."""
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match", str(out / "src"), str(out / "tgt"),
                   "--inference", "src", "--seed", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["__version__"] == __version__
        retrieval = payload["retrieval"]
        assert retrieval["enabled"] is True
        assert retrieval["top_k"] == 16
        assert retrieval["queries"] > 0
        assert retrieval["pairs_considered"] > 0
        assert retrieval["pairs_pruned"] == 0
        assert retrieval["recall"] == 1.0

    def test_match_no_retrieval_flag(self, tmp_path, capsys):
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        base = ["match", str(out / "src"), str(out / "tgt"),
                "--inference", "src", "--seed", "2", "--json"]
        assert main(base) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert main(base + ["--no-retrieval"]) == 0
        exhaustive = json.loads(capsys.readouterr().out)
        assert exhaustive["retrieval"]["enabled"] is False
        assert exhaustive["retrieval"]["queries"] == 0
        # The exhaustive reference is bit-identical to the default run.
        assert exhaustive["matches"] == pruned["matches"]

    def test_match_retrieval_top_k_flag(self, tmp_path, capsys):
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match", str(out / "src"), str(out / "tgt"),
                   "--inference", "src", "--seed", "2",
                   "--retrieval-top-k", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["retrieval"]["top_k"] == 2
        assert payload["retrieval"]["pairs_pruned"] > 0

    def test_retrieval_top_k_must_be_positive(self, tmp_path, capsys):
        out = tmp_path / "wl"
        with pytest.raises(SystemExit):
            main(["match", str(out / "src"), str(out / "tgt"),
                  "--retrieval-top-k", "0"])

    def test_match_many_json_retrieval_section(self, tmp_path, capsys):
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match-many", str(out / "tgt"), str(out / "src"),
                   str(out / "src"), "--inference", "src", "--seed", "2",
                   "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["__version__"] == __version__
        # Two identical sources: counters are summed across the batch.
        assert payload["retrieval"]["queries"] > 0
        assert payload["retrieval"]["queries"] % 2 == 0
        assert payload["retrieval"]["recall"] == 1.0

    def test_scenarios_run_retrieval_flags(self, capsys):
        rc = main(["scenarios", "run", "events", "--size", "80", "--json"])
        assert rc == 0
        default = json.loads(capsys.readouterr().out)
        assert default["__version__"] == __version__
        assert default["retrieval"]["enabled"] is True
        assert default["retrieval"]["recall"] == 1.0

        rc = main(["scenarios", "run", "events", "--size", "80",
                   "--retrieval-top-k", "3", "--json"])
        assert rc == 0
        pruned = json.loads(capsys.readouterr().out)
        # The flag reaches the run through the spec's own config tuple.
        assert pruned["spec"]["config"]["retrieval_top_k"] == 3
        assert pruned["retrieval"]["top_k"] == 3
        assert pruned["retrieval"]["pairs_pruned"] > 0

        rc = main(["scenarios", "run", "events", "--size", "80",
                   "--no-retrieval", "--json"])
        assert rc == 0
        off = json.loads(capsys.readouterr().out)
        assert off["spec"]["config"]["use_retrieval"] is False
        assert off["retrieval"]["enabled"] is False
        assert off["retrieval"]["queries"] == 0
        # Same metrics either way — retrieval is invisible at default k.
        assert off["metrics"] == default["metrics"]

    def test_scenarios_run_unknown_name_exits_cleanly(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["scenarios", "run", "no-such-scenario"])
        assert "unknown scenario" in str(excinfo.value)

    def test_scenarios_run_batch_json_surfaces_executor(self, capsys):
        """Several names (or --jobs) switch to the batch document: results
        in input order plus the serialized ThroughputReport."""
        rc = main(["scenarios", "run", "events", "retail", "--size", "80",
                   "--jobs", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["scenario"] for r in payload["results"]] \
            == ["events", "retail"]
        executor = payload["executor"]
        assert executor["backend"] == "process"
        assert executor["workers"] == 2
        assert executor["tasks"] == 2
        assert len(executor["task_seconds"]) == 2
        from repro.context.serialize import throughput_from_dict
        assert throughput_from_dict(executor).tasks == 2

    def test_scenarios_run_multiple_names_text(self, capsys):
        rc = main(["scenarios", "run", "events", "events", "--size", "60"])
        assert rc == 0
        output = capsys.readouterr().out
        assert output.count("events:") == 2
        assert "# executor:" in output

    def test_map_with_no_matches_fails_cleanly(self, tmp_path, capsys):
        import csv
        src = tmp_path / "src"
        tgt = tmp_path / "tgt"
        src.mkdir(), tgt.mkdir()
        with (src / "a.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["x"])
            for i in range(10):
                writer.writerow([f"zzz{i}"])
        with (tgt / "b.csv").open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["y"])
            for i in range(10):
                writer.writerow([i * 1.5])
        rc = main(["map", str(src), str(tgt), "--inference", "src",
                   "--tau", "0.99"])
        assert rc == 1


class TestStoreAndServeCLI:
    """Satellite: the new subcommands, including the --json surfaces that
    must carry ``__version__`` and the store path."""

    @pytest.fixture(scope="class")
    def workload_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("wl")
        assert main(["generate", "retail", str(out), "--rows", "80",
                     "--seed", "7"]) == 0
        return out

    @pytest.fixture(scope="class")
    def store_dir(self, tmp_path_factory, workload_dir):
        return tmp_path_factory.mktemp("store")

    def test_store_and_serve_parse(self):
        args = build_parser().parse_args(
            ["store", "save", "tgt", "--store", "s", "--json"])
        assert args.store_command == "save" and args.json
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--port", "0", "--jobs", "2",
             "--startup-only"])
        assert args.jobs == 2 and args.startup_only

    def test_save_json_carries_version_and_store(self, workload_dir,
                                                 store_dir, capsys):
        rc = main(["store", "save", str(workload_dir / "tgt"),
                   "--store", str(store_dir), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["__version__"] == __version__
        assert doc["store"] == str(store_dir)
        assert len(doc["entry"]["token"]) == 64
        assert doc["entry"]["kind"] == "prepared-target"

    def test_save_again_dedups(self, workload_dir, store_dir, capsys):
        rc = main(["store", "save", str(workload_dir / "tgt"),
                   "--store", str(store_dir)])
        assert rc == 0
        assert "already stored" in capsys.readouterr().out

    def test_list_json(self, store_dir, capsys):
        rc = main(["store", "list", "--store", str(store_dir), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["__version__"] == __version__
        assert len(doc["entries"]) == 1
        assert doc["total_bytes"] > 0

    def test_load_verifies(self, store_dir, capsys):
        main(["store", "list", "--store", str(store_dir), "--json"])
        token = json.loads(capsys.readouterr().out)["entries"][0]["token"]
        rc = main(["store", "load", token, "--store", str(store_dir),
                   "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["verified"] is True
        assert doc["entry"]["token"] == token

    def test_load_missing_exits_cleanly(self, store_dir):
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "load", "0" * 64, "--store", str(store_dir)])
        assert "no artifact" in str(excinfo.value)

    def test_gc_json(self, store_dir, capsys):
        rc = main(["store", "gc", "--store", str(store_dir), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["removed"] == {}
        assert doc["remaining"] == 1
        assert doc["store"] == str(store_dir)

    def test_serve_startup_only_json(self, store_dir, capsys):
        rc = main(["serve", "--store", str(store_dir), "--port", "0",
                   "--startup-only", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["__version__"] == __version__
        assert doc["store"] == str(store_dir)
        assert doc["targets_warmed"] == 1
        assert doc["serving"].startswith("http://127.0.0.1:")

    def test_serve_startup_only_text(self, store_dir, capsys):
        rc = main(["serve", "--store", str(store_dir), "--port", "0",
                   "--startup-only"])
        assert rc == 0
        out = capsys.readouterr().out
        assert __version__ in out
        assert "1 targets warm" in out


class TestMatchRepoCLI:
    """``repro match-repo``: route sources across a store of hubs."""

    @pytest.fixture(scope="class")
    def fleet_dirs(self, tmp_path_factory):
        from repro.datagen import make_routing_fleet
        from repro.relational import dump_database

        root = tmp_path_factory.mktemp("fleet")
        fleet = make_routing_fleet(hub_families=("events", "retail"),
                                   sources_per_hub=1, size=140)
        for family, hub in fleet.hubs.items():
            dump_database(hub, root / f"hub-{family}")
        for case in fleet.sources:
            dump_database(case.source, root / f"src-{case.hub_family}")
        return root

    @pytest.fixture(scope="class")
    def hub_store(self, tmp_path_factory, fleet_dirs):
        store = tmp_path_factory.mktemp("hub-store")
        for family in ("events", "retail"):
            assert main(["store", "save",
                         str(fleet_dirs / f"hub-{family}"),
                         "--store", str(store)]) == 0
        return store

    def test_parses(self):
        args = build_parser().parse_args(
            ["match-repo", "s1", "s2", "--store", "dir",
             "--targets", "t1", "t2", "--jobs", "2", "--json"])
        assert args.sources == ["s1", "s2"]
        assert args.targets == ["t1", "t2"]
        assert args.jobs == 2 and args.json

    def test_text_output_ranks_hubs(self, fleet_dirs, hub_store, capsys):
        rc = main(["match-repo", str(fleet_dirs / "src-events"),
                   "--store", str(hub_store)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== " in out
        assert "[2 hubs]" in out
        assert out.count("score=") == 2

    def test_json_routes_both_sources(self, fleet_dirs, hub_store, capsys):
        rc = main(["match-repo", str(fleet_dirs / "src-events"),
                   str(fleet_dirs / "src-retail"),
                   "--store", str(hub_store), "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["__version__"] == __version__
        assert len(doc["targets"]) == 2
        assert doc["repository"] == {"routes": 2, "pairs": 4,
                                     "appends": 0, "profiles_merged": 0,
                                     "profiles_rebuilt": 0,
                                     "classifier_values_taught": 0,
                                     "classifier_retrains": 0}
        # Each source routes to a different hub, and the winner carries
        # its full drill-down result.
        bests = [result["best"] for result in doc["results"]]
        assert len(set(bests)) == 2
        for result in doc["results"]:
            winner = [entry for entry in result["ranking"]
                      if entry["token"] == result["best"]]
            assert "result" in winner[0]

    def test_targets_subset_and_jobs(self, fleet_dirs, hub_store, capsys):
        list_rc = main(["store", "list", "--store", str(hub_store),
                        "--json"])
        assert list_rc == 0
        entries = json.loads(capsys.readouterr().out)["entries"]
        token = entries[-1]["token"]  # oldest entry: the events hub
        rc = main(["match-repo", str(fleet_dirs / "src-events"),
                   "--store", str(hub_store), "--targets", token,
                   "--jobs", "1", "--json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["targets"] == [token]
        assert doc["results"][0]["best"] == token

    def test_empty_store_exits_cleanly(self, fleet_dirs, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["match-repo", str(fleet_dirs / "src-events"),
                  "--store", str(tmp_path / "empty")])
        assert "repro: error" in str(excinfo.value)
