"""Repetition and averaging helpers for experiment drivers.

The paper averages every data point over 8-200 random partitions of the
sample data; drivers here average over (workload seed, partition seed)
pairs.  All aggregation is deterministic given the seed lists.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, TypeVar

T = TypeVar("T")

__all__ = ["Averaged", "summarize", "seed_pairs"]


@dataclasses.dataclass(frozen=True)
class Averaged:
    """Mean and spread of a repeated measurement."""

    mean: float
    std: float
    n: int
    values: tuple[float, ...]

    def __str__(self) -> str:
        return f"{self.mean:.1f}±{self.std:.1f} (n={self.n})"


def summarize(values: Iterable[float]) -> Averaged:
    """Population mean/std of a measurement series."""
    values = tuple(float(v) for v in values)
    if not values:
        return Averaged(0.0, 0.0, 0, ())
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return Averaged(mean, math.sqrt(variance), len(values), values)


def seed_pairs(n: int, *, base: int = 0) -> list[tuple[int, int]]:
    """Deterministic (workload seed, partition seed) pairs for averaging."""
    return [(base + 11 + 13 * i, base + 5 + 7 * i) for i in range(n)]
