"""Unit tests for per-type target classifiers (Figure 7)."""

import pytest

from repro.classifiers import TargetClassifierSet, create_target_classifier
from repro.relational import Database, DataType, Relation


@pytest.fixture()
def two_table_target() -> Database:
    book = Relation.infer_schema("book", {
        "title": ["the hidden garden", "a war of kings", "the lost letter",
                  "shadows of avalon", "the scholar's road"],
        "price": [15.0, 16.5, 14.0, 18.0, 15.5],
    })
    music = Relation.infer_schema("music", {
        "title": ["electric groove", "midnight soul", "neon static",
                  "live at the apollo", "the reverb sessions"],
        "price": [11.0, 12.5, 10.0, 13.0, 11.5],
    })
    return Database.from_relations("RT", [book, music])


class TestTraining:
    def test_family_classifiers_created(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target)
        assert tags.families() == {"textual", "numeric"}

    def test_functional_alias(self, two_table_target):
        tags = create_target_classifier(two_table_target)
        assert tags.families() == {"textual", "numeric"}


class TestClassification:
    def test_textual_routing(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target)
        assert tags.classify("the golden garden of kings",
                             DataType.TEXT) == "book.title"
        assert tags.classify("supersonic groove vol. 2",
                             DataType.TEXT) == "music.title"

    def test_numeric_routing(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target)
        tag = tags.classify(15.5, DataType.FLOAT)
        assert tag == "book.price"

    def test_missing_value_is_none(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target)
        assert tags.classify(None, DataType.TEXT) is None

    def test_unknown_family_is_none(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target)
        assert tags.classify(True, DataType.BOOLEAN) is None

    def test_sample_limit_keeps_working(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target, sample_limit=2)
        assert tags.classify("electric groove", DataType.TEXT) is not None

    def test_tags_are_qualified(self, two_table_target):
        tags = TargetClassifierSet.train(two_table_target)
        tag = tags.classify("a war of avalon", DataType.TEXT)
        table, _, attr = tag.partition(".")
        assert table in {"book", "music"} and attr == "title"
