"""Composable pipeline stages — Algorithm ContextMatch (Figure 5) unrolled.

The monolithic driver loop is decomposed into five explicit stages so
deployments can instrument, replace, or extend individual steps (modern
matching systems are configurable multi-stage processes, not monoliths):

1. :class:`StandardMatchStage` — accepted prototype matches per source
   relation (``StandardMatch(RS, RT, τ)``, line 4);
2. :class:`InferViewsStage` — candidate view families
   (``InferCandidateViews``, line 5);
3. :class:`ScoreCandidatesStage` — re-score every prototype against every
   candidate view, accumulating RL (``ScoreMatch``, lines 6-11);
4. :class:`SelectStage` — the matches to present
   (``SelectContextualMatches``, line 12);
5. :class:`ConjunctiveRefineStage` — iterate over selected views for
   conjunctive conditions (Section 3.5).

Stages communicate through a mutable :class:`PipelineState` and run in
list order; each returns diagnostic counts for its
:class:`~repro.engine.report.StageReport`.  The decomposition is
result-preserving: the only randomized step is view inference, and the
stage-major order issues its RNG draws in exactly the relation order the
original fused loop did.
"""

from __future__ import annotations

import abc
import dataclasses

from ..context.candidates import CandidateViewGenerator, InferenceContext
from ..context.conjunctive import refine_conjunctive
from ..context.model import ContextMatchConfig, MatchResult
from ..context.score import score_family_candidates
from ..context.select import select_matches
from ..matching.standard import AttributeMatch, MatchingSystem
from ..relational.instance import Database
from ..relational.views import ViewFamily
from .prepared import PreparedTarget

__all__ = ["PipelineState", "Stage", "StandardMatchStage",
           "InferViewsStage", "ScoreCandidatesStage", "SelectStage",
           "ConjunctiveRefineStage", "default_stages"]


@dataclasses.dataclass
class PipelineState:
    """Everything one run reads and writes, shared by all stages.

    ``result`` is the :class:`MatchResult` under construction; the keyed
    intermediates (``accepted``, ``families``) let later stages look up
    per-relation products of earlier ones without re-deriving them.
    """

    source: Database
    prepared: PreparedTarget
    config: ContextMatchConfig
    matcher: MatchingSystem
    generator: CandidateViewGenerator
    ctx: InferenceContext
    result: MatchResult
    #: Accepted prototype matches keyed by source relation name.
    accepted: dict[str, list[AttributeMatch]] = dataclasses.field(
        default_factory=dict)
    #: Inferred view families keyed by source relation name.
    families: dict[str, list[ViewFamily]] = dataclasses.field(
        default_factory=dict)


class Stage(abc.ABC):
    """One step of the matching pipeline.

    Stages must be stateless across runs (one stage list may serve many
    concurrent-in-time runs of the same engine); all per-run state lives
    in the :class:`PipelineState`.
    """

    name: str = "stage"

    @abc.abstractmethod
    def run(self, state: PipelineState) -> dict[str, int]:
        """Execute the stage, mutating ``state``; returns the diagnostic
        counts recorded in this stage's :class:`StageReport`."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StandardMatchStage(Stage):
    """Accepted prototype matches from the black-box standard matcher."""

    name = "standard-match"

    def run(self, state: PipelineState) -> dict[str, int]:
        for relation in state.source:
            accepted = [
                m for m in state.matcher.score_relation(
                    relation, state.prepared.index)
                if state.matcher.accept(m, state.config.tau)
            ]
            state.accepted[relation.name] = accepted
            state.result.standard_matches.extend(accepted)
        return {"relations": len(state.accepted),
                "accepted": len(state.result.standard_matches)}


class InferViewsStage(Stage):
    """Candidate view families per source relation (``InferCandidateViews``)."""

    name = "infer-views"

    def run(self, state: PipelineState) -> dict[str, int]:
        for relation in state.source:
            families = state.generator.infer(
                relation, state.accepted.get(relation.name, []), state.ctx)
            state.families[relation.name] = families
            state.result.families.extend(families)
        n_views = sum(len(f.views()) for fs in state.families.values()
                      for f in fs)
        return {"families": len(state.result.families), "views": n_views}


class ScoreCandidatesStage(Stage):
    """Re-score every prototype match against every candidate view (RL)."""

    name = "score-candidates"

    def run(self, state: PipelineState) -> dict[str, int]:
        for relation in state.source:
            seen_views: set = set()
            for family in state.families.get(relation.name, []):
                state.result.candidates.extend(score_family_candidates(
                    family, relation, state.accepted.get(relation.name, []),
                    state.matcher, state.prepared.index,
                    min_view_rows=state.config.min_view_rows,
                    seen_views=seen_views))
        return {"candidates": len(state.result.candidates)}


class SelectStage(Stage):
    """Choose the matches to present (``SelectContextualMatches``)."""

    name = "select"

    def run(self, state: PipelineState) -> dict[str, int]:
        config = state.config
        state.result.matches = select_matches(
            state.result.standard_matches, state.result.candidates,
            selection=config.selection, omega=config.omega,
            early_disjuncts=config.early_disjuncts)
        contextual = sum(1 for m in state.result.matches if m.is_contextual)
        return {"selected": len(state.result.matches),
                "contextual": contextual}


class ConjunctiveRefineStage(Stage):
    """Iterate ContextMatch over selected views for conjunctive conditions.

    Runs ``conjunctive_stages - 1`` refinement iterations; with the default
    configuration (``conjunctive_stages=1``) it is a timed no-op, so the
    stage still appears in every :class:`RunReport`.
    """

    name = "conjunctive-refine"

    def run(self, state: PipelineState) -> dict[str, int]:
        iterations = 0
        for _stage in range(1, state.config.conjunctive_stages):
            matches, families, candidates = refine_conjunctive(
                state.result.matches, state.source, state.generator,
                state.matcher, state.prepared.index, state.ctx)
            state.result.matches = matches
            state.result.families.extend(families)
            state.result.candidates.extend(candidates)
            iterations += 1
        return {"iterations": iterations,
                "matches": len(state.result.matches)}


def default_stages() -> list[Stage]:
    """The paper's five-stage ContextMatch pipeline, in order."""
    return [StandardMatchStage(), InferViewsStage(), ScoreCandidatesStage(),
            SelectStage(), ConjunctiveRefineStage()]
