"""Unit tests for tokenizers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.matching import normalize_text, qgrams, value_to_text, word_tokens
from repro.matching.tokens import qgram_set


class TestValueToText:
    def test_none_empty(self):
        assert value_to_text(None) == ""

    def test_bool(self):
        assert value_to_text(True) == "true"

    def test_integral_float(self):
        assert value_to_text(3.0) == "3"

    def test_plain(self):
        assert value_to_text("Abc") == "Abc"


class TestNormalize:
    def test_lowercases_and_collapses(self):
        assert normalize_text("The  White--Album!") == "the white album"

    def test_empty(self):
        assert normalize_text("  ") == ""


class TestWordTokens:
    def test_camel_case(self):
        assert word_tokens("ItemType") == ["item", "type"]

    def test_snake_case(self):
        assert word_tokens("list_price") == ["list", "price"]

    def test_mixed(self):
        assert word_tokens("bookISBN10") == ["book", "isbn10"]


class TestQgrams:
    def test_basic_trigrams(self):
        grams = qgrams("abcd", 3, pad=False)
        assert grams == ["abc", "bcd"]

    def test_padding_marks_boundaries(self):
        grams = qgrams("ab", 3)
        assert grams[0].startswith("#")
        assert grams[-1].endswith("#")

    def test_short_string_yields_one_gram(self):
        assert qgrams("a", 3, pad=False) == ["a"]

    def test_empty_yields_nothing(self):
        assert qgrams("", 3) == []

    def test_q_must_be_positive(self):
        with pytest.raises(ValueError):
            qgrams("abc", 0)

    def test_qgram_set_unions_values(self):
        grams = qgram_set(["ab", "bc"], 2)
        assert "ab" in grams and "bc" in grams


@given(st.text(alphabet="abcdefgh ", max_size=30))
def test_qgram_count_matches_length(text):
    grams = qgrams(text, 3, pad=False)
    normalized = normalize_text(text)
    if len(normalized) >= 3:
        assert len(grams) == len(normalized) - 2
    elif normalized:
        assert grams == [normalized]
    else:
        assert grams == []


@given(st.text(max_size=30))
def test_normalize_idempotent(text):
    once = normalize_text(text)
    assert normalize_text(once) == once


class TestQGramCache:
    def test_cached_equals_uncached(self):
        from repro.matching.tokens import QGramCache, qgrams, value_to_text

        cache = QGramCache()
        for value in ["hello world", 42, 3.5, 7.0, True, None, "N/A", ""]:
            assert cache.qgrams(value, 3) == tuple(
                qgrams(value_to_text(value), 3))

    def test_hits_and_misses_counted(self):
        from repro.matching.tokens import QGramCache

        cache = QGramCache()
        cache.qgrams("abc")
        cache.qgrams("abc")
        cache.qgrams("xyz")
        assert cache.hits == 1 and cache.misses == 2
        assert cache.counters() == {"token_cache_hits": 1,
                                    "token_cache_misses": 2}

    def test_equal_but_differently_typed_values_do_not_alias(self):
        """1, 1.0 and True hash equal but render differently — the cache
        must key on the concrete class."""
        from repro.matching.tokens import QGramCache

        cache = QGramCache()
        assert cache.qgrams(1) == cache.qgrams(1.0)  # both render "1"
        assert cache.qgrams(True) != cache.qgrams(1)  # "true" vs "1"

    def test_unhashable_values_bypass_cache(self):
        from repro.matching.tokens import QGramCache, qgrams, value_to_text

        cache = QGramCache()
        value = ["a", "list"]
        assert cache.qgrams(value) == tuple(qgrams(value_to_text(value), 3))
        assert len(cache) == 0 and cache.misses == 1

    def test_bounded_by_max_entries(self):
        from repro.matching.tokens import QGramCache

        cache = QGramCache(max_entries=4)
        for i in range(10):
            cache.qgrams(f"value {i}")
        assert len(cache) <= 4

    def test_clear_keeps_counters(self):
        from repro.matching.tokens import QGramCache

        cache = QGramCache()
        cache.qgrams("abc")
        cache.clear()
        assert len(cache) == 0 and cache.misses == 1
        cache.qgrams("abc")
        assert cache.misses == 2  # re-tokenized after clear

    def test_shared_cache_counters_snapshot(self):
        from repro.matching.tokens import cached_qgrams, token_cache_counters

        before = token_cache_counters()
        cached_qgrams("snapshot-test-value")
        cached_qgrams("snapshot-test-value")
        after = token_cache_counters()
        assert after["token_cache_hits"] >= before["token_cache_hits"] + 1
        assert after["token_cache_misses"] >= before["token_cache_misses"]
