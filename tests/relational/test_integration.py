"""Cross-module integration tests on the relational substrate: views,
conditions and constraints working together over realistic instances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational import (Database, Eq, In, Key, Or, Relation, View,
                              ViewFamily, dump_database, load_database)


class TestViewAlgebra:
    def test_family_views_partition_any_relation(self, retail_workload):
        items = retail_workload.source.relation("items")
        family = ViewFamily.simple("items", "ItemType",
                                   items.distinct("ItemType"))
        sizes = [len(v.evaluate(items)) for v in family]
        assert sum(sizes) == len(items)
        assert all(s > 0 for s in sizes)

    def test_merged_family_still_partitions(self, retail_workload):
        items = retail_workload.source.relation("items")
        values = items.distinct("ItemType")
        family = ViewFamily.simple("items", "ItemType", values)
        merged = family.merge(values[0], values[1])
        sizes = [len(v.evaluate(items)) for v in merged]
        assert sum(sizes) == len(items)

    def test_restricted_view_composes(self, retail_workload):
        items = retail_workload.source.relation("items")
        view = View("items", Eq("ItemType", "Book1"))
        refined = view.restrict(Eq("StockStatus", "Low"))
        rows = list(refined.evaluate(items).rows())
        assert all(r["ItemType"] == "Book1" and r["StockStatus"] == "Low"
                   for r in rows)
        assert len(rows) <= len(view.evaluate(items))

    def test_disjunction_is_union_of_views(self, retail_workload):
        items = retail_workload.source.relation("items")
        v1 = View("items", Eq("ItemType", "Book1")).evaluate(items)
        v2 = View("items", Eq("ItemType", "Book2")).evaluate(items)
        both = View("items", In("ItemType", ["Book1", "Book2"])) \
            .evaluate(items)
        assert len(both) == len(v1) + len(v2)

    def test_or_equivalent_to_in(self, retail_workload):
        items = retail_workload.source.relation("items")
        via_in = View("items", In("ItemType", ["Book1", "CD1"])) \
            .evaluate(items)
        via_or = View("items", Or.of(Eq("ItemType", "Book1"),
                                     Eq("ItemType", "CD1"))).evaluate(items)
        assert via_in.column("ItemID") == via_or.column("ItemID")


class TestConstraintsOnWorkloads:
    def test_item_id_is_key(self, retail_workload):
        items = retail_workload.source.relation("items")
        assert Key("items", ("ItemID",)).holds_on(items)

    def test_grades_composite_key(self, grades_workload):
        narrow = grades_workload.source.relation("grades_narrow")
        assert Key("grades_narrow", ("name", "examNum")).holds_on(narrow)
        assert not Key("grades_narrow", ("name",)).holds_on(narrow)


class TestWorkloadPersistence:
    def test_retail_round_trip(self, retail_workload, tmp_path):
        dump_database(retail_workload.source, tmp_path / "src")
        loaded = load_database(tmp_path / "src")
        original = retail_workload.source.relation("items")
        reloaded = loaded.relation("items")
        assert len(reloaded) == len(original)
        assert reloaded.column("Name") == original.column("Name")
        assert reloaded.column("ListPrice") == original.column("ListPrice")


@settings(max_examples=25)
@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=1,
                max_size=60))
def test_property_family_partition(labels):
    """Property: a simple view family always partitions its base table."""
    relation = Relation.infer_schema("t", {
        "x": list(range(len(labels))), "label": labels})
    family = ViewFamily.simple("t", "label", sorted(set(labels)))
    sizes = [len(v.evaluate(relation)) for v in family]
    assert sum(sizes) == len(labels)


@settings(max_examples=25)
@given(st.lists(st.sampled_from(["a", "b", "c", "d"]), min_size=2,
                max_size=60))
def test_property_merge_preserves_partition(labels):
    values = sorted(set(labels))
    if len(values) < 2:
        return
    relation = Relation.infer_schema("t", {
        "x": list(range(len(labels))), "label": labels})
    family = ViewFamily.simple("t", "label", values).merge(values[0],
                                                           values[-1])
    sizes = [len(v.evaluate(relation)) for v in family]
    assert sum(sizes) == len(labels)
