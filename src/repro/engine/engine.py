"""The match engine — prepared targets, pluggable stages, batch matching.

:class:`MatchEngine` is the library's primary entry point.  It splits a
contextual match run into a reusable target-side preparation step
(:meth:`MatchEngine.prepare`) and a per-source pipeline
(:meth:`MatchEngine.match`), so a service matching many incoming schemas
against a small set of stable hub schemas profiles each hub exactly once::

    engine = MatchEngine(ContextMatchConfig(inference="src"))
    prepared = engine.prepare(hub_schema)
    results = engine.match_many(incoming_schemas, prepared)

The source side is symmetric: :meth:`MatchEngine.prepare_source` wraps a
source schema in a :class:`~repro.engine.prepared.PreparedSource` whose
:class:`~repro.profiling.ProfileStore` persists column profiles and view
partitions across runs, so re-matching the same source (sweeps, re-tuned
thresholds) skips source-side profiling.  Even a plain-database run gets
a per-run store: candidate views are scored from one partition of the
base relation instead of being materialized each (the
:mod:`repro.profiling` fast path, bit-identical to the legacy per-view
path and switchable via ``ContextMatchConfig.use_profiling``).  Profile
and partition cache counters appear in each stage's
:class:`~repro.engine.report.StageReport`.

The pipeline itself is an ordered list of
:class:`~repro.engine.stages.Stage` objects (Figure 5's five steps by
default) observable through :class:`~repro.engine.hooks.EngineObserver`;
every run returns a :class:`~repro.context.model.MatchResult` carrying a
:class:`~repro.engine.report.RunReport` with per-stage timings and counts.

:class:`~repro.context.contextmatch.ContextMatch` remains as a thin
backward-compatible facade over this class.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..context.candidates import InferenceContext, make_generator
from ..context.categorical import CategoricalPolicy
from ..context.model import ContextMatchConfig, MatchResult
from ..errors import EngineError
from ..matching.standard import MatchingSystem, StandardMatch
from ..profiling import ProfileStore
from ..relational.instance import Database
from .hooks import EngineObserver
from .prepared import PreparedSource, PreparedTarget
from .report import RunReport, StageReport
from .stages import PipelineState, Stage, default_stages

if TYPE_CHECKING:  # pragma: no cover - typing only (executor/store sit above)
    from ..store.artifacts import ArtifactStore
    from .executor import MatchExecutor

__all__ = ["MatchEngine"]


class MatchEngine:
    """Contextual schema matcher with reusable target preparation.

    Parameters
    ----------
    config:
        All thresholds and policy switches; see
        :class:`~repro.context.model.ContextMatchConfig`.
    matcher:
        The standard matching system to wrap.  Anything implementing
        :class:`~repro.matching.standard.MatchingSystem` works; defaults
        to the library's :class:`~repro.matching.standard.StandardMatch`.
    policy:
        Thresholds of the categorical-attribute test.
    stages:
        The pipeline to run, in order; defaults to the paper's five
        ContextMatch stages (:func:`~repro.engine.stages.default_stages`).
    observers:
        :class:`~repro.engine.hooks.EngineObserver` instances notified
        around every stage of every run.

    Example
    -------
    >>> from repro.datagen import make_retail_workload
    >>> workload = make_retail_workload(target="ryan", seed=7)
    >>> engine = MatchEngine()
    >>> prepared = engine.prepare(workload.target)
    >>> result = engine.match(workload.source, prepared)
    >>> any(m.is_contextual for m in result.matches)
    True
    """

    def __init__(self, config: ContextMatchConfig | None = None,
                 matcher: MatchingSystem | None = None,
                 policy: CategoricalPolicy | None = None,
                 *, stages: Sequence[Stage] | None = None,
                 observers: Sequence[EngineObserver] = ()):
        self.config = config or ContextMatchConfig()
        self.matcher = matcher or StandardMatch(self.config.standard)
        self.policy = policy or CategoricalPolicy()
        self.stages: list[Stage] = (list(stages) if stages is not None
                                    else default_stages())
        self.observers: list[EngineObserver] = list(observers)

    # ------------------------------------------------------------------
    # Target preparation
    # ------------------------------------------------------------------
    def prepare(self, target: Database, *,
                store: "ArtifactStore | None" = None) -> PreparedTarget:
        """Profile *target* once for reuse across any number of runs.

        With *store* (an :class:`~repro.store.ArtifactStore`) preparation
        becomes durable: if the store already holds an artifact for this
        (target content, engine fingerprint) pair it is loaded — verified,
        bit-identical to preparing in memory — and otherwise the freshly
        built artifact is saved before being returned.  Engines whose
        fingerprint is identity-scoped (custom matching systems) bypass
        the store.
        """
        if store is not None:
            return store.prepared_target(self, target)
        # Stamp the configuration the index was actually profiled under: a
        # custom StandardMatch may carry a different config than the
        # engine-level ContextMatchConfig.standard.
        standard_config = (self.matcher.config
                           if isinstance(self.matcher, StandardMatch)
                           else self.config.standard)
        return PreparedTarget.build(
            target, self.matcher.build_target_index(target),
            standard_config=standard_config, policy=self.policy,
            matcher=self.matcher)

    def _resolve(self, target: Database | PreparedTarget
                 ) -> tuple[PreparedTarget, bool]:
        """(prepared, was_supplied): prepare plain databases on the fly."""
        if isinstance(target, PreparedTarget):
            self._check_compatible(target)
            return target, True
        return self.prepare(target), False

    def _check_compatible(self, prepared: PreparedTarget) -> None:
        if prepared.policy != self.policy:
            raise EngineError(
                "PreparedTarget was built under a different categorical "
                f"policy ({prepared.policy} != {self.policy}); re-prepare "
                "the target with this engine")
        if not self._matcher_interchangeable(prepared.matcher):
            raise EngineError(
                "PreparedTarget was built by an incompatible matching "
                f"system ({prepared.matcher!r} vs {self.matcher!r}); "
                "re-prepare the target with this engine")

    def prepared_fingerprint(self) -> tuple:
        """Hashable digest of every configuration input prepared artifacts
        derive from.

        Two engines with equal fingerprints produce interchangeable
        (bit-identical) :class:`PreparedTarget` / :class:`PreparedSource`
        artifacts; caches such as
        :class:`~repro.evaluation.runner.EngineRunner`'s prepared LRUs key
        on it so engines with differing configurations sharing one runner
        can never serve each other stale artifacts.  A plain
        :class:`StandardMatch` whose matcher zoo was derived from its
        configuration fingerprints by that configuration (mirroring
        :meth:`_matcher_interchangeable`); anything else — custom matching
        systems, and StandardMatch instances built over an explicit
        matcher list, whose parameterization names/types do not expose —
        fingerprints by identity, since its artifacts are only provably
        valid for itself.
        """
        matcher = self.matcher
        if type(matcher) is StandardMatch and matcher.default_zoo:
            matcher_key: tuple = ("standard", matcher.config)
        else:
            matcher_key = ("custom", type(matcher).__qualname__, id(matcher))
        return (matcher_key, self.policy)

    def _matcher_interchangeable(self, theirs: MatchingSystem | None) -> bool:
        """Whether artifacts built by *theirs* are valid for this engine.

        Distinct matcher objects are interchangeable only when both are
        plain StandardMatch instances whose zoos were derived from equal
        configurations — the derived artifacts are then bit-equal.
        Anything else (custom systems, explicit matcher lists whose
        parameterization the names don't expose) must be the same object,
        or its artifacts may silently disagree with this engine's scorer.
        """
        ours = self.matcher
        if theirs is ours:
            return True
        return (type(ours) is StandardMatch and type(theirs) is StandardMatch
                and ours.default_zoo
                and getattr(theirs, "default_zoo", False)
                and ours.config == theirs.config)

    # ------------------------------------------------------------------
    # Source preparation
    # ------------------------------------------------------------------
    def prepare_source(self, source: Database) -> PreparedSource:
        """Build a reusable source-side profile store for *source*.

        The returned :class:`PreparedSource` can stand in for the source
        database in :meth:`match` / :meth:`match_many`: column profiles
        and family partitions accumulate in its
        :class:`~repro.profiling.ProfileStore` across runs, so repeated
        matching of the same source skips source-side profiling.  Scores
        are bit-identical to matching the plain database.
        """
        store = ProfileStore.for_matcher(self.matcher)
        if store is None:
            raise EngineError(
                f"matching system {self.matcher!r} does not expose the "
                "profiling interface (supports_profile_store); pass the "
                "plain Database instead")
        standard_config = (self.matcher.config
                           if isinstance(self.matcher, StandardMatch)
                           else self.config.standard)
        return PreparedSource(source=source, store=store,
                              standard_config=standard_config,
                              matcher=self.matcher)

    def _check_source_compatible(self, prepared: PreparedSource) -> None:
        if (self._matcher_interchangeable(prepared.matcher)
                and prepared.store.matcher_names
                == tuple(m.name for m in getattr(self.matcher, "matchers",
                                                 ()))):
            return
        raise EngineError(
            "PreparedSource was built by an incompatible matching system "
            f"({prepared.matcher!r} vs {self.matcher!r}); re-prepare the "
            "source with this engine")

    def _resolve_source(self, source: Database | PreparedSource
                        ) -> tuple[Database, ProfileStore | None, bool]:
        """(database, profile store, was_prepared) for one run's source.

        A plain database gets a fresh per-run store (intra-run reuse:
        partition-once view scoring, profile sharing across stages) when
        profiling is enabled and the matcher supports it; a
        :class:`PreparedSource` contributes its long-lived store.  With
        ``config.use_profiling`` False no store is used anywhere — the
        legacy per-view path, kept as the equivalence reference.
        """
        if isinstance(source, PreparedSource):
            self._check_source_compatible(source)
            store = source.store if self.config.use_profiling else None
            source.runs += 1
            return source.source, store, True
        if not self.config.use_profiling:
            return source, None, False
        return source, ProfileStore.for_matcher(self.matcher), False

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def match(self, source: Database | PreparedSource,
              target: Database | PreparedTarget) -> MatchResult:
        """Run the stage pipeline for one source schema.

        ``target`` may be a plain :class:`Database` (prepared on the fly,
        exactly like ``ContextMatch.run``) or a :class:`PreparedTarget`
        from :meth:`prepare`, in which case no target profiling happens.
        ``source`` may likewise be a :class:`PreparedSource` from
        :meth:`prepare_source`, in which case source-side column profiles
        and partitions persist across runs.
        """
        started = time.perf_counter()
        prepared, supplied = self._resolve(target)
        source_db, store, source_supplied = self._resolve_source(source)
        config = self.config
        ctx = InferenceContext(
            config=config, rng=np.random.default_rng(config.seed),
            target=prepared.target, policy=self.policy,
            _target_classifiers=prepared.target_classifiers,
            tag_cache=prepared.tag_cache)
        state = PipelineState(
            source=source_db, prepared=prepared, config=config,
            matcher=self.matcher, generator=make_generator(config.inference),
            ctx=ctx, result=MatchResult(), store=store)
        report = RunReport(target_prepared=supplied,
                           source_prepared=source_supplied)

        for observer in self.observers:
            observer.on_run_start(source_db, prepared)
        for stage in self.stages:
            for observer in self.observers:
                observer.on_stage_start(stage.name, state)
            stage_started = time.perf_counter()
            counts = stage.run(state) or {}
            stage_report = StageReport(
                name=stage.name,
                elapsed_seconds=time.perf_counter() - stage_started,
                counts=dict(counts))
            report.stages.append(stage_report)
            for observer in self.observers:
                observer.on_stage_end(stage_report, state)

        # Keep lazily-trained target classifiers for the next run against
        # this prepared target (training is deterministic, so sharing only
        # skips work, never changes results).
        if prepared.target_classifiers is None:
            prepared.target_classifiers = ctx._target_classifiers
        prepared.runs += 1

        result = state.result
        result.elapsed_seconds = time.perf_counter() - started
        report.elapsed_seconds = result.elapsed_seconds
        result.report = report
        for observer in self.observers:
            observer.on_run_end(report, result)
        return result

    def match_many(self, sources: Iterable[Database | PreparedSource],
                   target: Database | PreparedTarget,
                   *, executor: "MatchExecutor | None" = None
                   ) -> list[MatchResult]:
        """Match every source schema against one shared target.

        The target is prepared (at most) once, up front; each source then
        runs the full pipeline against the shared
        :class:`PreparedTarget`.  Sources may individually be
        :class:`PreparedSource` objects to amortize their own profiling
        across batches.  Results arrive in input order and are identical
        to independent :meth:`match` calls per source.

        ``executor`` routes the batch through a
        :class:`~repro.engine.executor.MatchExecutor` (its process backend
        fans sources out across worker processes, bit-identically); the
        executor's ``last_throughput`` carries the batch-level
        :class:`~repro.engine.report.ThroughputReport`.
        """
        if executor is not None:
            return executor.match_many(self, sources, target).results
        prepared, _ = self._resolve(target)
        return [self.match(source, prepared) for source in sources]

    def match_reversed(self, source: Database | PreparedTarget,
                       target: Database) -> MatchResult:
        """Discover matches with conditions on the *target* tables.

        Section 3: "it is generally straightforward to reverse the role of
        source and target tables to discover matches involving conditions
        on the target table."  The pipeline runs with the roles swapped —
        so the reusable prepared side is the *source* here — and the
        result is flipped back into the caller's frame: matches carry
        ``condition_on="target"``, the ``standard_matches`` diagnostics
        are flipped to source -> target orientation, and
        ``elapsed_seconds`` covers this reversed run itself.
        """
        started = time.perf_counter()
        prepared, supplied = self._resolve(source)
        result = self.match(target, prepared)
        result.matches = [m.flipped() for m in result.matches]
        result.standard_matches = [m.flipped()
                                   for m in result.standard_matches]
        result.elapsed_seconds = time.perf_counter() - started
        if result.report is not None:
            result.report.elapsed_seconds = result.elapsed_seconds
            result.report.role_reversed = True
            # The inner match() saw a PreparedTarget either way; what the
            # caller cares about is whether *this call* had to build it.
            result.report.target_prepared = supplied
        return result
