"""Unit tests for candidate-view inference (NaiveInfer, ClusteredViewGen,
SrcClassInfer, TgtClassInfer, early-disjunct merging)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.context import (ContextMatchConfig, InferenceContext, NaiveInfer,
                           SrcClassInfer, TgtClassInfer, make_generator,
                           set_partitions)
from repro.context.candidates import assess_family
from repro.classifiers import NaiveBayesClassifier
from repro.matching.standard import AttributeMatch
from repro.relational import Database, Relation, ViewFamily
from repro.relational.schema import AttributeRef


def make_ctx(target_db=None, *, early=False, seed=3, **config_kwargs):
    config = ContextMatchConfig(early_disjuncts=early, seed=seed,
                                **config_kwargs)
    if target_db is None:
        target_db = Database.from_relations(
            "T", [Relation.infer_schema("t", {"x": ["a", "b"]})])
    return InferenceContext(config=config,
                            rng=np.random.default_rng(seed),
                            target=target_db)


def dummy_match(table="items"):
    return AttributeMatch(source=AttributeRef(table, "a"),
                          target=AttributeRef("t", "x"),
                          score=0.9, confidence=0.9)


@pytest.fixture()
def two_class_relation(rng) -> Relation:
    """Text attribute cleanly classified by a categorical label.

    Titles carry a unique numeric suffix so the text attribute itself does
    not trip the categorical test (its values must be near-distinct).
    """
    books = ["garden of kings", "hidden war letters", "the lost road",
             "shadow of the castle", "a winter journey"]
    cds = ["electric groove", "midnight soul", "neon static parade",
           "supersonic rhythm", "velvet echo"]
    names, labels = [], []
    for i in range(120):
        if rng.random() < 0.5:
            names.append(f"{books[int(rng.integers(5))]} {i}")
            labels.append("B")
        else:
            names.append(f"{cds[int(rng.integers(5))]} {i}")
            labels.append("C")
    return Relation.infer_schema("items", {"a": names, "label": labels})


class TestSetPartitions:
    @pytest.mark.parametrize("n,bell", [(0, 1), (1, 1), (2, 2), (3, 5),
                                        (4, 15), (5, 52)])
    def test_bell_numbers(self, n, bell):
        assert len(list(set_partitions(list(range(n))))) == bell

    @given(st.integers(1, 5))
    @settings(max_examples=10)
    def test_each_partition_covers_all(self, n):
        values = list(range(n))
        for blocks in set_partitions(values):
            flat = sorted(v for block in blocks for v in block)
            assert flat == values


class TestNaiveInfer:
    def test_empty_matches_yield_nothing(self, two_class_relation):
        ctx = make_ctx()
        assert NaiveInfer().infer(two_class_relation, [], ctx) == []

    def test_simple_families(self, two_class_relation):
        ctx = make_ctx(early=False)
        families = NaiveInfer().infer(two_class_relation, [dummy_match()],
                                      ctx)
        assert len(families) == 1
        family = families[0]
        assert family.attribute == "label"
        assert len(family.groups) == 2

    def test_early_enumerates_partitions(self):
        relation = Relation.infer_schema("items", {
            "a": [f"w{i}" for i in range(40)],
            "label": (["p"] * 10 + ["q"] * 10 + ["r"] * 10 + ["s"] * 10),
        })
        ctx = make_ctx(early=True)
        families = NaiveInfer().infer(relation, [dummy_match()], ctx)
        # Bell(4)=15 partitions minus the all-in-one and all-singletons,
        # plus the base family.
        assert len(families) == 1 + (15 - 2)

    def test_exclusion(self, two_class_relation):
        ctx = make_ctx()
        families = NaiveInfer().infer(two_class_relation, [dummy_match()],
                                      ctx,
                                      exclude_attributes=frozenset({"label"}))
        assert families == []


class TestAssessFamily:
    def test_correlated_family_significant(self, two_class_relation, rng):
        family = ViewFamily.simple("items", "label", ["B", "C"])
        pairs = list(zip(two_class_relation.column("a"),
                         two_class_relation.column("label")))
        result = assess_family(family, NaiveBayesClassifier(),
                               pairs[:60], pairs[60:])
        assert result.significant(0.95)

    def test_random_family_not_significant(self, rng):
        values = [f"text {i % 7}" for i in range(120)]
        labels = [("X" if rng.random() < 0.5 else "Y") for _ in range(120)]
        family = ViewFamily.simple("items", "label", ["X", "Y"])
        pairs = list(zip(values, labels))
        result = assess_family(family, NaiveBayesClassifier(),
                               pairs[:60], pairs[60:])
        assert not result.significant(0.95)


class TestSrcClassInfer:
    def test_finds_correlated_family(self, two_class_relation):
        ctx = make_ctx()
        families = SrcClassInfer().infer(two_class_relation,
                                         [dummy_match()], ctx)
        assert any(f.attribute == "label" and len(f.groups) == 2
                   for f in families)

    def test_rejects_uncorrelated_label(self, rng):
        relation = Relation.infer_schema("items", {
            "a": [f"uncorrelated text {int(rng.integers(1000))}"
                  for _ in range(120)],
            "label": [("X" if rng.random() < 0.5 else "Y")
                      for _ in range(120)],
        })
        ctx = make_ctx()
        assert SrcClassInfer().infer(relation, [dummy_match()], ctx) == []

    def test_early_disjuncts_merges_confused_values(self, rng):
        """Four labels, pairwise indistinguishable within two superclasses:
        the merge loop must produce the two-group family."""
        books = ["garden of kings", "hidden war letters", "the lost road"]
        cds = ["electric groove", "midnight soul", "neon static parade"]
        names, labels = [], []
        for i in range(200):
            if rng.random() < 0.5:
                names.append(f"{books[int(rng.integers(3))]} {i}")
                labels.append("B1" if rng.random() < 0.5 else "B2")
            else:
                names.append(f"{cds[int(rng.integers(3))]} {i}")
                labels.append("C1" if rng.random() < 0.5 else "C2")
        relation = Relation.infer_schema("items", {"a": names,
                                                   "label": labels})
        ctx = make_ctx(early=True)
        families = SrcClassInfer().infer(relation, [dummy_match()], ctx)
        merged = [f for f in families
                  if frozenset({"B1", "B2"}) in f.groups
                  and frozenset({"C1", "C2"}) in f.groups]
        assert merged, "expected the {B1,B2}|{C1,C2} family to be inferred"

    def test_tiny_relation_skipped(self):
        relation = Relation.infer_schema("items", {"a": ["x", "y"],
                                                   "label": ["p", "q"]})
        ctx = make_ctx()
        assert SrcClassInfer().infer(relation, [dummy_match()], ctx) == []


class TestTgtClassInfer:
    def test_finds_family_via_target_tags(self, two_class_relation):
        book = Relation.infer_schema("book", {
            "title": ["garden of kings", "hidden war letters",
                      "the lost road", "a winter journey"] * 3})
        music = Relation.infer_schema("music", {
            "title": ["electric groove", "midnight soul",
                      "velvet echo", "supersonic rhythm"] * 3})
        target = Database.from_relations("T", [book, music])
        ctx = make_ctx(target)
        families = TgtClassInfer().infer(two_class_relation,
                                         [dummy_match()], ctx)
        assert any(f.attribute == "label" for f in families)

    def test_tag_cache_shared(self, two_class_relation):
        target = Database.from_relations("T", [Relation.infer_schema(
            "book", {"title": ["garden of kings", "war letters"] * 4})])
        ctx = make_ctx(target)
        TgtClassInfer().infer(two_class_relation, [dummy_match()], ctx)
        assert len(ctx.tag_cache) > 0


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("naive", NaiveInfer), ("src", SrcClassInfer),
        ("tgt", TgtClassInfer)])
    def test_known_kinds(self, kind, cls):
        assert isinstance(make_generator(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_generator("bogus")
