"""Type-compatibility matcher.

A weak, always-applicable signal: identical declared types score 1, types in
the same family (int/real, string/text) score high, and incompatible types
score 0.  Its role is to damp cross-family matches the instance matchers
abstain on, mirroring the "similarity of schema and metadata information"
evidence of Section 1.
"""

from __future__ import annotations

from ...relational.types import DataType
from .base import AttributeSample, Matcher

__all__ = ["TypeMatcher"]


class TypeMatcher(Matcher):
    """Declared-type compatibility score."""

    name = "type"
    #: The profile depends only on the declared type, which every cell of a
    #: partitioned attribute shares — any member profile is the union's.
    mergeable = True

    def __init__(self, *, weight: float = 0.5):
        self.weight = weight

    def profile(self, sample: AttributeSample) -> DataType:
        return sample.attribute.dtype

    def merge_profiles(self, profiles) -> DataType:
        return next(iter(profiles))

    def score_profiles(self, source: DataType, target: DataType) -> float:
        if source is target:
            return 1.0
        if source.compatible_with(target):
            return 0.75
        return 0.0
