"""Tests for the Section 5 evaluation metrics."""

import pytest

from repro.context.model import ContextualMatch
from repro.datagen import GroundTruth
from repro.evaluation import condition_values, evaluate_matches
from repro.relational import TRUE, And, Eq, In, Or, View
from repro.relational.schema import AttributeRef


def found(src_attr, tgt_attr, condition, *, src_table="items",
          tgt_table="books", conf=0.9):
    view = None if condition.is_true() else View(src_table, condition)
    return ContextualMatch(
        source=AttributeRef(src_table, src_attr),
        target=AttributeRef(tgt_table, tgt_attr),
        condition=condition, score=0.8, confidence=conf, view=view)


@pytest.fixture()
def truth() -> GroundTruth:
    gt = GroundTruth()
    gt.add("items", "Name", "books", "title", "ItemType", ["B1", "B2"])
    gt.add("items", "Code", "books", "isbn", "ItemType", ["B1", "B2"])
    return gt


class TestConditionValues:
    def test_eq(self):
        assert condition_values(Eq("a", 1)) == ("a", frozenset({1}))

    def test_in(self):
        assert condition_values(In("a", [1, 2])) == ("a", frozenset({1, 2}))

    def test_or_of_eqs(self):
        cond = Or.of(Eq("a", 1), Eq("a", 2))
        assert condition_values(cond) == ("a", frozenset({1, 2}))

    def test_or_across_attributes_rejected(self):
        assert condition_values(Or.of(Eq("a", 1), Eq("b", 2))) is None

    def test_conjunction_rejected(self):
        assert condition_values(And.of(Eq("a", 1), Eq("b", 2))) is None

    def test_true_rejected(self):
        assert condition_values(TRUE) is None


class TestEvaluateMatches:
    def test_perfect(self, truth):
        edges = [
            found("Name", "title", In("ItemType", ["B1", "B2"])),
            found("Code", "isbn", In("ItemType", ["B1", "B2"])),
        ]
        metrics = evaluate_matches(edges, truth)
        assert metrics.accuracy == 100.0
        assert metrics.precision == 100.0
        assert metrics.fmeasure == 100.0

    def test_standard_matches_ignored(self, truth):
        edges = [found("Name", "title", TRUE)]
        metrics = evaluate_matches(edges, truth)
        assert metrics.n_found == 0
        assert metrics.accuracy == 0.0

    def test_partial_coverage_fractional_recall(self, truth):
        edges = [found("Name", "title", Eq("ItemType", "B1"))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.accuracy == pytest.approx(25.0)  # half of one of two
        assert metrics.precision == 100.0

    def test_two_singleton_views_cover_fully(self, truth):
        edges = [found("Name", "title", Eq("ItemType", "B1")),
                 found("Name", "title", Eq("ItemType", "B2"))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.accuracy == pytest.approx(50.0)

    def test_wrong_condition_attribute_is_error(self, truth):
        edges = [found("Name", "title", Eq("StockStatus", "Low"))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.precision == 0.0

    def test_value_outside_allowed_set_is_error(self, truth):
        edges = [found("Name", "title", In("ItemType", ["B1", "CD1"]))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.precision == 0.0

    def test_wrong_pair_is_error(self, truth):
        edges = [found("Name", "isbn", Eq("ItemType", "B1"))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.precision == 0.0
        assert metrics.accuracy == 0.0

    def test_duplicates_counted_once(self, truth):
        edge = found("Name", "title", Eq("ItemType", "B1"))
        metrics = evaluate_matches([edge, edge], truth)
        assert metrics.n_found == 1

    def test_conjunctive_condition_is_error_for_simple_truth(self, truth):
        edges = [found("Name", "title",
                       And.of(Eq("ItemType", "B1"), Eq("Qty", 1)))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.precision == 0.0

    def test_multi_entry_truth_union(self):
        gt = GroundTruth()
        for exam in (1, 2):
            gt.add("narrow", "name", "wide", "name", "examNum", [exam])
        edges = [found("name", "name", In("examNum", [1, 2]),
                       src_table="narrow", tgt_table="wide")]
        metrics = evaluate_matches(edges, gt)
        assert metrics.precision == 100.0
        assert metrics.accuracy == 100.0

    def test_empty_truth(self):
        metrics = evaluate_matches([], GroundTruth())
        assert metrics.accuracy == 0.0
        assert metrics.fmeasure == 0.0

    def test_fmeasure_harmonic(self, truth):
        edges = [found("Name", "title", In("ItemType", ["B1", "B2"])),
                 found("Name", "title", Eq("StockStatus", "x"))]
        metrics = evaluate_matches(edges, truth)
        assert metrics.precision == pytest.approx(50.0)
        assert metrics.accuracy == pytest.approx(50.0)
        assert metrics.fmeasure == pytest.approx(50.0)
