"""Unit tests for the matcher zoo."""

import pytest

from repro.matching import (AttributeSample, NameMatcher, NumericMatcher,
                            QGramMatcher, TypeMatcher, ValueOverlapMatcher,
                            default_matchers)
from repro.matching.matchers.numeric import NumericSummary
from repro.relational import Attribute, DataType


def sample(name, values, dtype=DataType.TEXT, table="t"):
    return AttributeSample.from_column(table, Attribute(name, dtype), values)


class TestAttributeSample:
    def test_drops_missing(self):
        s = sample("a", ["x", None, "", "y"])
        assert s.values == ("x", "y")

    def test_limit_thins_deterministically(self):
        s1 = AttributeSample.from_column(
            "t", Attribute("a"), list(range(100)), limit=10)
        s2 = AttributeSample.from_column(
            "t", Attribute("a"), list(range(100)), limit=10)
        assert s1.values == s2.values
        assert len(s1) == 10

    def test_limit_noop_when_small(self):
        s = AttributeSample.from_column("t", Attribute("a"), [1, 2],
                                        limit=10)
        assert s.values == (1, 2)


class TestNameMatcher:
    def test_identical_names(self):
        m = NameMatcher()
        assert m.score(sample("price", []), sample("price", [])) == \
            pytest.approx(1.0)

    def test_synonyms_fold(self):
        m = NameMatcher()
        score = m.score(sample("name", []), sample("title", []))
        assert score > 0.5  # 'name' folds to 'title' via synonyms

    def test_camel_vs_snake(self):
        m = NameMatcher()
        score = m.score(sample("ListPrice", []), sample("list_price", []))
        assert score > 0.9

    def test_unrelated_names_low(self):
        m = NameMatcher()
        assert m.score(sample("qty", []), sample("author", [])) < 0.4

    def test_bad_token_share_rejected(self):
        with pytest.raises(ValueError):
            NameMatcher(token_share=1.5)


class TestQGramMatcher:
    def test_same_population_high(self):
        m = QGramMatcher()
        books = ["the hidden garden", "a war of kings", "the lost letter"]
        more = ["the golden garden", "a king of wars", "the hidden road"]
        assert m.score(sample("a", books), sample("b", more)) > 0.6

    def test_different_population_lower(self):
        m = QGramMatcher()
        titles = ["the hidden garden", "a war of kings"]
        codes = ["B0006L16N8", "B0009PLM4Y"]
        same = m.score(sample("a", titles), sample("b", titles))
        cross = m.score(sample("a", titles), sample("b", codes))
        assert cross < same

    def test_not_applicable_to_numeric(self):
        m = QGramMatcher()
        numeric = sample("n", [1.5], DataType.FLOAT)
        text = sample("t", ["x"])
        assert not m.applicable(numeric, text)

    def test_empty_profile_scores_zero(self):
        m = QGramMatcher()
        assert m.score_profiles(m.profile(sample("a", [])),
                                m.profile(sample("b", ["x"]))) == 0.0

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            QGramMatcher(q=0)


class TestValueOverlap:
    def test_identical_sets(self):
        m = ValueOverlapMatcher()
        assert m.score(sample("a", ["x", "y"]), sample("b", ["y", "x"])) == 1.0

    def test_case_insensitive(self):
        m = ValueOverlapMatcher()
        assert m.score(sample("a", ["Hardcover"]),
                       sample("b", ["hardcover"])) == 1.0

    def test_disjoint(self):
        m = ValueOverlapMatcher()
        assert m.score(sample("a", ["x"]), sample("b", ["y"])) == 0.0


class TestNumericMatcher:
    def test_same_distribution_high(self, rng):
        m = NumericMatcher()
        a = sample("a", list(rng.normal(50, 5, 200)), DataType.FLOAT)
        b = sample("b", list(rng.normal(50, 5, 200)), DataType.FLOAT)
        assert m.score(a, b) > 0.85

    def test_shifted_distribution_lower(self, rng):
        m = NumericMatcher()
        a = sample("a", list(rng.normal(50, 5, 200)), DataType.FLOAT)
        b = sample("b", list(rng.normal(90, 5, 200)), DataType.FLOAT)
        c = sample("c", list(rng.normal(50, 5, 200)), DataType.FLOAT)
        assert m.score(a, b) < m.score(a, c)

    def test_not_applicable_to_text(self):
        m = NumericMatcher()
        assert not m.applicable(sample("a", ["x"]),
                                sample("b", [1], DataType.INTEGER))

    def test_summary_from_garbage_is_none(self):
        assert NumericSummary.from_values(["x", "y"]) is None

    def test_constant_columns(self):
        m = NumericMatcher()
        a = sample("a", [5.0] * 10, DataType.FLOAT)
        b = sample("b", [5.0] * 10, DataType.FLOAT)
        assert m.score(a, b) > 0.95

    def test_summary_quartiles_ordered(self, rng):
        summary = NumericSummary.from_values(list(rng.normal(0, 1, 500)))
        assert summary.minimum <= summary.q1 <= summary.median \
            <= summary.q3 <= summary.maximum


class TestTypeMatcher:
    def test_identical(self):
        m = TypeMatcher()
        assert m.score(sample("a", [], DataType.INTEGER),
                       sample("b", [], DataType.INTEGER)) == 1.0

    def test_family(self):
        m = TypeMatcher()
        assert m.score(sample("a", [], DataType.INTEGER),
                       sample("b", [], DataType.FLOAT)) == 0.75

    def test_incompatible(self):
        m = TypeMatcher()
        assert m.score(sample("a", [], DataType.TEXT),
                       sample("b", [], DataType.FLOAT)) == 0.0


def test_default_zoo_composition():
    names = {m.name for m in default_matchers()}
    assert names == {"name", "qgram", "overlap", "numeric", "type"}
