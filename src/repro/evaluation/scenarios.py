"""Scenario runs and the golden-metrics regression tier.

:func:`run_scenario` is the one-call quality probe every scaling PR leans
on: build a registered (or ad-hoc) :class:`~repro.datagen.ScenarioSpec`
into a workload, run the match engine under the spec's configuration, and
score the result against the workload's ground truth — returning a
:class:`ScenarioResult` that bundles precision/recall/F-measure, match
counts, the per-stage :class:`~repro.engine.report.RunReport` and the
profile-cache counters summed across stages.  :func:`run_scenarios` is the
batch counterpart: a list of specs routed through a
:class:`~repro.engine.executor.MatchExecutor` (optionally fanned out
across threads or worker processes, bit-identically), returning results
in input order plus the batch's throughput counters.

The *golden tier* pins these results per scenario: ``tests/golden/``
holds one committed JSON baseline per registered scenario
(:func:`golden_payload` emits it, :func:`compare_to_golden` checks a
fresh run against it with per-field tolerances), exposed as
``pytest -m golden`` and via the ``repro scenarios`` CLI subcommand.
Baselines carry their own tolerances, so a scenario whose metrics are
legitimately noisier can widen its band in one reviewable place.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Mapping

from ..context.model import ContextMatchConfig, MatchResult
from ..context.serialize import report_from_dict, report_to_dict
from ..datagen.registry import ScenarioSpec, build_scenario, get_scenario
from ..engine.engine import MatchEngine
from ..engine.executor import BatchResult, MatchExecutor
from ..engine.report import RunReport
from .metrics import EvalMetrics, evaluate_result
from .runner import EngineRunner

__all__ = ["ScenarioResult", "run_scenario", "run_scenarios",
           "scenario_result_to_dict", "scenario_result_from_dict",
           "golden_payload", "compare_to_golden", "DEFAULT_TOLERANCES"]

#: Profile-cache counter keys aggregated from stage reports (the PR-2
#: profiling subsystem's reuse telemetry).
PROFILE_COUNTER_KEYS = ("profile_hits", "profile_misses", "partitions_built",
                        "partition_hits", "profiles_merged")

#: Default comparison bands for golden baselines: metrics are percentages
#: (absolute tolerance in percentage points); counts and counters are
#: deterministic integers and compare exactly unless a baseline widens them.
DEFAULT_TOLERANCES = {"metrics": 1.0, "counts": 0, "counters": 0}


@dataclasses.dataclass
class ScenarioResult:
    """Quality and diagnostics of one scenario run.

    ``counters`` sums the profile-cache counters over every pipeline stage
    of the run; ``report`` is the engine's full per-stage
    :class:`~repro.engine.report.RunReport` (None for results deserialized
    from payloads that omitted it).
    """

    scenario: str
    spec: ScenarioSpec
    metrics: EvalMetrics
    n_matches: int
    n_contextual: int
    counters: dict[str, int]
    elapsed_seconds: float
    report: RunReport | None = None

    def __str__(self) -> str:
        return (f"{self.scenario}: {self.metrics} "
                f"[{self.n_contextual}/{self.n_matches} contextual, "
                f"{self.elapsed_seconds:.2f}s]")


def _profile_counters(report: RunReport | None) -> dict[str, int]:
    totals = {key: 0 for key in PROFILE_COUNTER_KEYS}
    if report is not None:
        for stage in report.stages:
            for key in PROFILE_COUNTER_KEYS:
                totals[key] += int(stage.counts.get(key, 0))
    return totals


def scenario_config(spec: ScenarioSpec) -> ContextMatchConfig:
    """The engine configuration a spec's ``config`` overrides resolve to."""
    overrides = spec.config_overrides()
    base = ContextMatchConfig()
    return dataclasses.replace(base, **overrides) if overrides else base


def run_scenario(spec: ScenarioSpec | str, *,
                 config: ContextMatchConfig | None = None,
                 runner: EngineRunner | None = None) -> ScenarioResult:
    """Build, match and score one scenario.

    ``config`` replaces the spec-derived configuration entirely when given
    (ablations over a fixed workload); ``runner`` routes the run through a
    shared :class:`~repro.evaluation.runner.EngineRunner` so sweeps reuse
    prepared targets and sources.
    """
    if isinstance(spec, str):
        spec = get_scenario(spec)
    workload = build_scenario(spec)
    resolved = config if config is not None else scenario_config(spec)
    if runner is not None:
        result: MatchResult = runner.run(workload.source, workload.target,
                                         resolved)
    else:
        result = MatchEngine(resolved).match(workload.source,
                                             workload.target)
    metrics = evaluate_result(result, workload.ground_truth)
    return ScenarioResult(
        scenario=spec.name, spec=spec, metrics=metrics,
        n_matches=len(result.matches),
        n_contextual=sum(1 for m in result.matches if m.is_contextual),
        counters=_profile_counters(result.report),
        elapsed_seconds=result.elapsed_seconds, report=result.report)


def _scenario_task(payload: tuple[ScenarioSpec, ContextMatchConfig | None]
                   ) -> ScenarioResult:
    """Executor task: one full scenario run (workers rebuild the workload
    from the spec, so nothing but the tiny spec/config pair is shipped)."""
    spec, config = payload
    return run_scenario(spec, config=config)


def run_scenarios(specs: Iterable[ScenarioSpec | str], *,
                  config: ContextMatchConfig | None = None,
                  executor: MatchExecutor | None = None) -> BatchResult:
    """Run a batch of scenarios, optionally fanned out across workers.

    The batch counterpart of :func:`run_scenario`: every spec (or
    registered name) is built, matched and scored independently — scenario
    workloads are deterministic functions of their specs, so tasks ship
    only the spec and rebuild the workload worker-side.  Results come back
    in input order inside a :class:`~repro.engine.executor.BatchResult`
    whose :class:`~repro.engine.report.ThroughputReport` records workers,
    per-task elapsed and wall time; both the thread backend
    (``MatchExecutor(ExecutorConfig(backend="thread"))``) and the process
    backend are bit-identical to the default in-process serial run.
    """
    resolved = [get_scenario(spec) if isinstance(spec, str) else spec
                for spec in specs]
    if executor is None:
        executor = MatchExecutor()
    return executor.run_tasks(_scenario_task,
                              [(spec, config) for spec in resolved])


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def _metrics_to_dict(metrics: EvalMetrics) -> dict[str, Any]:
    return {"accuracy": metrics.accuracy, "precision": metrics.precision,
            "fmeasure": metrics.fmeasure, "n_found": metrics.n_found,
            "n_correct_found": metrics.n_correct_found,
            "n_truth": metrics.n_truth}


def _metrics_from_dict(data: Mapping[str, Any]) -> EvalMetrics:
    return EvalMetrics(
        accuracy=float(data["accuracy"]), precision=float(data["precision"]),
        n_found=int(data.get("n_found", 0)),
        n_correct_found=int(data.get("n_correct_found", 0)),
        n_truth=int(data.get("n_truth", 0)))


def scenario_result_to_dict(result: ScenarioResult) -> dict[str, Any]:
    """Render a :class:`ScenarioResult` as a JSON-compatible dict
    (round-trippable via :func:`scenario_result_from_dict`)."""
    return {
        "scenario": result.scenario,
        "spec": result.spec.to_dict(),
        "metrics": _metrics_to_dict(result.metrics),
        "n_matches": result.n_matches,
        "n_contextual": result.n_contextual,
        "counters": dict(result.counters),
        "elapsed_seconds": result.elapsed_seconds,
        "report": (report_to_dict(result.report)
                   if result.report is not None else None),
    }


def scenario_result_from_dict(data: Mapping[str, Any]) -> ScenarioResult:
    """Inverse of :func:`scenario_result_to_dict` (``fmeasure`` is derived,
    not stored)."""
    report = data.get("report")
    return ScenarioResult(
        scenario=data["scenario"],
        spec=ScenarioSpec.from_dict(data["spec"]),
        metrics=_metrics_from_dict(data["metrics"]),
        n_matches=int(data.get("n_matches", 0)),
        n_contextual=int(data.get("n_contextual", 0)),
        counters={k: int(v) for k, v in data.get("counters", {}).items()},
        elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
        report=report_from_dict(report) if report is not None else None)


# ---------------------------------------------------------------------------
# Golden baselines
# ---------------------------------------------------------------------------

def golden_payload(result: ScenarioResult, *,
                   tolerances: Mapping[str, float] | None = None
                   ) -> dict[str, Any]:
    """The committed baseline document for one scenario.

    Timings and the full stage report are deliberately excluded — golden
    files pin *quality and deterministic counts*, not performance.
    """
    return {
        "scenario": result.scenario,
        "spec": result.spec.to_dict(),
        "tolerance": dict(tolerances or DEFAULT_TOLERANCES),
        "metrics": {"accuracy": result.metrics.accuracy,
                    "precision": result.metrics.precision,
                    "fmeasure": result.metrics.fmeasure},
        "counts": {"n_found": result.metrics.n_found,
                   "n_correct_found": result.metrics.n_correct_found,
                   "n_truth": result.metrics.n_truth,
                   "n_matches": result.n_matches,
                   "n_contextual": result.n_contextual},
        "counters": dict(result.counters),
    }


def compare_to_golden(result: ScenarioResult,
                      golden: Mapping[str, Any]) -> list[str]:
    """Check a fresh run against a committed baseline.

    Returns a list of human-readable violations (empty = within
    tolerance).  A spec mismatch is itself a violation: a baseline must be
    regenerated, not silently reinterpreted, when its scenario definition
    changes.
    """
    violations: list[str] = []
    tolerance = dict(DEFAULT_TOLERANCES)
    tolerance.update(golden.get("tolerance", {}))

    if golden.get("scenario") != result.scenario:
        violations.append(
            f"scenario name mismatch: baseline {golden.get('scenario')!r} "
            f"vs run {result.scenario!r}")
    if golden.get("spec") != result.spec.to_dict():
        violations.append(
            "spec mismatch: baseline was generated from a different "
            "scenario definition; regenerate tests/golden/"
            f"{result.scenario}.json")

    fresh_metrics = {"accuracy": result.metrics.accuracy,
                     "precision": result.metrics.precision,
                     "fmeasure": result.metrics.fmeasure}
    for key, expected in golden.get("metrics", {}).items():
        actual = fresh_metrics.get(key)
        if actual is None:
            violations.append(f"metrics.{key}: missing from run")
        elif abs(actual - float(expected)) > tolerance["metrics"]:
            violations.append(
                f"metrics.{key}: {actual:.2f} vs baseline "
                f"{float(expected):.2f} (tolerance "
                f"{tolerance['metrics']})")

    fresh_counts = {"n_found": result.metrics.n_found,
                    "n_correct_found": result.metrics.n_correct_found,
                    "n_truth": result.metrics.n_truth,
                    "n_matches": result.n_matches,
                    "n_contextual": result.n_contextual}
    for key, expected in golden.get("counts", {}).items():
        actual = fresh_counts.get(key, 0)
        if abs(actual - int(expected)) > tolerance["counts"]:
            violations.append(
                f"counts.{key}: {actual} vs baseline {int(expected)} "
                f"(tolerance {tolerance['counts']})")

    for key, expected in golden.get("counters", {}).items():
        actual = result.counters.get(key, 0)
        if abs(actual - int(expected)) > tolerance["counters"]:
            violations.append(
                f"counters.{key}: {actual} vs baseline {int(expected)} "
                f"(tolerance {tolerance['counters']})")
    return violations
