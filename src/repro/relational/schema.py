"""Schemas, tables and attributes (paper Section 2.1).

A :class:`Schema` is a named collection of tables; a :class:`TableSchema`
holds an ordered list of typed :class:`Attribute` objects.  Views (inferred
by contextual matching) are registered alongside base tables so the mapping
layer can treat them uniformly, but remain distinguishable via
:attr:`TableSchema.is_view`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Iterator

from ..errors import SchemaError, UnknownAttributeError, UnknownTableError
from .types import DataType

__all__ = ["Attribute", "TableSchema", "Schema", "AttributeRef"]


@dataclasses.dataclass(frozen=True)
class Attribute:
    """A named, typed attribute of a table or view."""

    name: str
    dtype: DataType = DataType.STRING

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return f"{self.name}: {self.dtype.value}"


@dataclasses.dataclass(frozen=True)
class AttributeRef:
    """A fully-qualified reference ``table.attribute`` used by matches,
    correspondences and constraints."""

    table: str
    attribute: str

    def __str__(self) -> str:
        return f"{self.table}.{self.attribute}"


class TableSchema:
    """Ordered collection of attributes with O(1) lookup by name.

    Parameters
    ----------
    name:
        Table name, unique within its :class:`Schema`.
    attributes:
        Iterable of :class:`Attribute` (or ``(name, dtype)`` pairs).
    is_view:
        True for select-only views inferred by contextual matching.
    """

    def __init__(
        self,
        name: str,
        attributes: Iterable[Attribute | tuple[str, DataType]],
        *,
        is_view: bool = False,
    ):
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name
        self.is_view = is_view
        self._attributes: list[Attribute] = []
        self._index: dict[str, int] = {}
        for item in attributes:
            attr = item if isinstance(item, Attribute) else Attribute(*item)
            if attr.name in self._index:
                raise SchemaError(
                    f"duplicate attribute {attr.name!r} in table {name!r}"
                )
            self._index[attr.name] = len(self._attributes)
            self._attributes.append(attr)
        if not self._attributes:
            raise SchemaError(f"table {name!r} must have at least one attribute")

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return tuple(self._attributes)

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising on a bad reference."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def index_of(self, name: str) -> int:
        """Positional index of *name*; raises on a bad reference."""
        try:
            return self._index[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def dtype(self, name: str) -> DataType:
        return self.attribute(name).dtype

    def ref(self, name: str) -> AttributeRef:
        """Qualified reference to an attribute of this table."""
        self.attribute(name)  # validate
        return AttributeRef(self.name, name)

    def project(self, names: Iterable[str], *, new_name: str | None = None,
                is_view: bool | None = None) -> "TableSchema":
        """A new schema with only *names*, in the order given."""
        attrs = [self.attribute(n) for n in names]
        return TableSchema(
            new_name or self.name,
            attrs,
            is_view=self.is_view if is_view is None else is_view,
        )

    def rename(self, new_name: str) -> "TableSchema":
        return TableSchema(new_name, self._attributes, is_view=self.is_view)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.name == other.name
            and self._attributes == other._attributes
            and self.is_view == other.is_view
        )

    def __hash__(self) -> int:
        return hash((self.name, tuple(self._attributes), self.is_view))

    def __repr__(self) -> str:
        kind = "view" if self.is_view else "table"
        cols = ", ".join(str(a) for a in self._attributes)
        return f"<{kind} {self.name}({cols})>"


class Schema:
    """A named collection of tables and views (``RS`` / ``RT`` in the paper)."""

    def __init__(self, name: str, tables: Iterable[TableSchema] = ()):
        self.name = name
        self._tables: dict[str, TableSchema] = {}
        for table in tables:
            self.add(table)

    def add(self, table: TableSchema) -> None:
        if table.name in self._tables:
            raise SchemaError(
                f"duplicate table {table.name!r} in schema {self.name!r}"
            )
        self._tables[table.name] = table

    def remove(self, name: str) -> None:
        if name not in self._tables:
            raise UnknownTableError(self.name, name)
        del self._tables[name]

    @property
    def tables(self) -> tuple[TableSchema, ...]:
        return tuple(self._tables.values())

    @property
    def base_tables(self) -> tuple[TableSchema, ...]:
        return tuple(t for t in self._tables.values() if not t.is_view)

    @property
    def views(self) -> tuple[TableSchema, ...]:
        return tuple(t for t in self._tables.values() if t.is_view)

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def table(self, name: str) -> TableSchema:
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(self.name, name) from None

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[TableSchema]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def resolve(self, ref: AttributeRef) -> Attribute:
        """Resolve a qualified reference, validating both halves."""
        return self.table(ref.table).attribute(ref.attribute)

    def __repr__(self) -> str:
        return f"<Schema {self.name}: {', '.join(self._tables)}>"
