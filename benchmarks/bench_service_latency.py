"""Service latency benchmark: concurrent clients against ``repro serve``.

Stands up the real serving stack — an :class:`~repro.store.ArtifactStore`
holding one prepared hub target, a :class:`~repro.service.MatchService`
with a warm LRU, and the ``ThreadingHTTPServer`` loop on an ephemeral
port — then drives it with concurrent HTTP clients issuing ``/match``
requests, exactly the hub-and-spoke deployment the service subsystem
exists for.

The headline numbers are request latency under concurrent load (client-
side p50/p99 across every request, plus the server's own ``/report``
percentiles) and sustained requests/sec.  Correctness is asserted along
the way: every response is bit-identical to an in-process engine run,
and the final report must show **exactly one** store load — the warm
LRU absorbed the entire storm.

Results are persisted to machine-readable ``results/BENCH_service.json``
(latency percentiles, throughput, LRU/store counters, concurrency
level).  Set ``BENCH_TINY=1`` for a seconds-scale smoke run (CI):
identity and one-load checks still apply.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from conftest import BENCH_TINY, run_once
from repro import ArtifactStore, ContextMatchConfig, MatchEngine, MatchService
from repro.context.serialize import result_to_dict
from repro.relational.jsonio import database_to_dict
from repro.service import start_service
from repro.service.report import latency_summary
from repro.datagen import make_retail_workload

N_CLIENTS = 4 if BENCH_TINY else 8
REQUESTS_PER_CLIENT = 3 if BENCH_TINY else 25
N_ROWS = 150 if BENCH_TINY else 1000
CONFIG = dict(inference="src", seed=5)


def _match_key(result_dict):
    return [(m["source"], m["target"], m["condition"], m["score"],
             m["confidence"]) for m in result_dict["matches"]]


def _storm(base_url, payload, expected):
    """N_CLIENTS concurrent client threads, each issuing its requests
    back-to-back; returns per-request client-side latencies (ms)."""
    latencies: list[float] = []
    errors: list[Exception] = []
    lock = threading.Lock()

    def client():
        body = json.dumps(payload).encode("utf-8")
        for _ in range(REQUESTS_PER_CLIENT):
            request = urllib.request.Request(
                f"{base_url}/match", data=body,
                headers={"Content-Type": "application/json"})
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(request) as response:
                    answer = json.loads(response.read())
                elapsed = (time.perf_counter() - started) * 1000.0
                assert _match_key(answer["result"]) == expected
                with lock:
                    latencies.append(elapsed)
            except Exception as exc:  # pragma: no cover - failure path
                with lock:
                    errors.append(exc)
                return

    threads = [threading.Thread(target=client) for _ in range(N_CLIENTS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]
    return latencies


def test_service_latency(benchmark, record_json, tmp_path):
    workload = make_retail_workload(target="ryan", n_source=N_ROWS, seed=5)
    engine = MatchEngine(ContextMatchConfig(**CONFIG))
    prepared = engine.prepare(workload.target)
    expected = _match_key(
        result_to_dict(engine.match(workload.source, prepared)))

    store = ArtifactStore(tmp_path / "store")
    entry = store.save(prepared, engine=engine)
    service = MatchService(store, config=ContextMatchConfig(**CONFIG))
    service.warm()
    server = start_service(service)
    payload = {"target": entry.token,
               "source": database_to_dict(workload.source)}
    base_url = f"http://127.0.0.1:{server.port}"

    try:
        wall_started = time.perf_counter()
        latencies = run_once(benchmark, _storm, base_url, payload, expected)
        wall_seconds = time.perf_counter() - wall_started
        report = service.report()
    finally:
        server.shutdown()
        server.server_close()

    total_requests = N_CLIENTS * REQUESTS_PER_CLIENT
    assert len(latencies) == total_requests
    client_side = latency_summary(latencies)
    server_side = report.latency_ms["match"]
    requests_per_second = total_requests / wall_seconds

    # The storm was absorbed by the warm LRU: one store load, full stop.
    assert report.lru["loads"] == 1, report.lru
    assert report.lru["hits"] >= total_requests
    assert report.errors == 0

    record_json("BENCH_service", {
        "benchmark": "bench_service_latency",
        "config": {**CONFIG, "n_rows": N_ROWS, "tiny": BENCH_TINY},
        "concurrency": {"clients": N_CLIENTS,
                        "requests_per_client": REQUESTS_PER_CLIENT},
        "requests": total_requests,
        "elapsed_seconds": wall_seconds,
        "ops_per_second": requests_per_second,
        "latency_ms": {"client": client_side, "server": server_side},
        "lru": report.lru,
        "store": report.store,
    })
    print(f"\n{total_requests} requests from {N_CLIENTS} concurrent "
          f"clients in {wall_seconds:.2f}s "
          f"({requests_per_second:.1f} req/s)")
    print(f"client p50 {client_side['p50']:.1f}ms / "
          f"p99 {client_side['p99']:.1f}ms; "
          f"server p50 {server_side['p50']:.1f}ms / "
          f"p99 {server_side['p99']:.1f}ms")
    print(f"lru: {report.lru}")
