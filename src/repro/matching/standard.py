"""The standard (non-contextual) schema matching system (Section 2.3).

:class:`StandardMatch` runs the matcher zoo over every (source attribute,
target attribute) pair, converts raw scores into confidences by normalizing
each matcher's score distribution across *all* target attributes
(:mod:`repro.matching.normalize`), and combines matcher confidences with
static weights (:mod:`repro.matching.combiner`).

The contextual layer treats this system as a black box through two entry
points:

* :meth:`StandardMatch.match` — accepted matches above a confidence
  threshold τ (the ``StandardMatch(RS, RT, τ)`` call of Figure 5, line 4);
* :meth:`StandardMatch.score_attribute` — re-score one source attribute
  sample (possibly view-restricted) against a prepared
  :class:`TargetIndex` (the ``ScoreMatch`` call of Figure 5, line 10).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Protocol, Sequence

from ..errors import MatchingError
from ..relational.instance import Database, Relation
from ..relational.schema import AttributeRef
from .combiner import MatcherEvidence, combine_evidence
from .matchers import AttributeSample, Matcher, default_matchers
from .normalize import confidences_from_scores

if TYPE_CHECKING:  # pragma: no cover - typing only (profiling sits above)
    from ..profiling import ColumnProfile, ProfileStore

__all__ = ["AttributeMatch", "StandardMatchConfig", "TargetIndex",
           "StandardMatch", "MatchingSystem"]

#: Ceiling on the target-side (reverse) confidence boost: relative-best
#: evidence alone never makes a match more confident than this.
_TARGET_SIDE_CAP = 0.85


@dataclasses.dataclass(frozen=True)
class AttributeMatch:
    """A scored pairing of a source attribute with a target attribute.

    ``source.table`` names a base table for standard matches and a view for
    contextual ones; ``score`` is the average matcher raw score (s_i in the
    strawman discussion) and ``confidence`` the combined confidence (f_i).
    """

    source: AttributeRef
    target: AttributeRef
    score: float
    confidence: float
    evidence: tuple[MatcherEvidence, ...] = ()

    def key(self) -> tuple[str, str, str, str]:
        return (self.source.table, self.source.attribute,
                self.target.table, self.target.attribute)

    def flipped(self) -> "AttributeMatch":
        """The same scored pairing seen from the other schema's viewpoint
        (role-reversed matching reports diagnostics in the caller's frame)."""
        return AttributeMatch(source=self.target, target=self.source,
                              score=self.score, confidence=self.confidence,
                              evidence=self.evidence)

    def __str__(self) -> str:
        return (f"{self.source} -> {self.target} "
                f"(score={self.score:.3f}, conf={self.confidence:.3f})")


@dataclasses.dataclass(frozen=True)
class StandardMatchConfig:
    """Knobs of the standard matching system.

    Parameters
    ----------
    sample_limit:
        Cap on the number of values profiled per attribute; larger samples
        are thinned deterministically.  Keeps repeated view re-scoring cheap.
    use_name_evidence:
        When False, only instance/type matchers run — used by experiments
        that must not let attribute names give the answer away.
    score_floor:
        Minimum combined raw score for a pair to be *accepted* by
        :meth:`StandardMatch.match`.  The Φ-normalized confidences grade on
        a curve (half of all pairs sit above 0.5 per matcher by
        construction), so acceptance requires absolute evidence too: a pair
        must look genuinely similar, not merely less dissimilar than its
        neighbours.
    """

    sample_limit: int = 400
    use_name_evidence: bool = True
    score_floor: float = 0.25

    def build_matchers(self) -> list[Matcher]:
        matchers = default_matchers()
        if not self.use_name_evidence:
            matchers = [m for m in matchers if m.name != "name"]
        return matchers


class TargetIndex:
    """Pre-profiled target schema: one profile per (matcher, target attr).

    Building the index once per ``ContextMatch`` run amortizes target-side
    profiling across the hundreds of candidate-view re-scorings.
    """

    def __init__(self, database: Database, matchers: Sequence[Matcher],
                 sample_limit: int):
        self.database = database
        self.matchers = list(matchers)
        self.samples: list[AttributeSample] = []
        for relation in database:
            for attribute in relation.schema:
                self.samples.append(AttributeSample.from_relation(
                    relation, attribute, limit=sample_limit))
        if not self.samples:
            raise MatchingError("target schema has no attributes to match")
        self.profiles: dict[str, list[object]] = {
            m.name: [m.profile(s) for s in self.samples] for m in self.matchers
        }

    def refs(self) -> list[AttributeRef]:
        return [AttributeRef(s.table, s.name) for s in self.samples]


class MatchingSystem(Protocol):
    """The black-box interface the contextual layer depends on.

    Implementations may additionally opt into the profiling fast path by
    setting ``supports_profile_store = True`` and providing
    ``score_column_profile(profile, index)`` plus ``matchers`` / ``config``
    attributes (see :class:`StandardMatch`); the contextual layer falls
    back to :meth:`score_attribute` per view otherwise.  Setting
    ``supports_target_subset = True`` additionally opts into the retrieval
    frontier: the scoring entry points then accept a ``positions`` keyword
    restricting the target side.  Systems without the flag are always
    scored exhaustively.
    """

    def match(self, source: Database, target: Database,
              tau: float) -> list[AttributeMatch]:
        """Accepted matches with confidence >= tau."""
        ...

    def accept(self, match: AttributeMatch, tau: float) -> bool:
        """Whether a scored pair clears the acceptance thresholds."""
        ...

    def score_relation(self, relation: Relation,
                       index: "TargetIndex") -> list[AttributeMatch]:
        """Scores from every attribute of one source relation."""
        ...

    def build_target_index(self, target: Database) -> TargetIndex:
        """Prepare the reusable target-side profiles."""
        ...

    def score_attribute(self, table: str, sample_values: Sequence,
                        attribute, index: TargetIndex) -> list[AttributeMatch]:
        """Score one (possibly view-restricted) source attribute sample
        against every target attribute."""
        ...


class StandardMatch:
    """Multi-matcher instance-based schema matcher."""

    #: This scorer can consume :class:`~repro.profiling.ColumnProfile`
    #: objects and exposes ``matchers``/``config`` for
    #: :meth:`~repro.profiling.ProfileStore.for_matcher`.
    supports_profile_store = True

    #: This scorer accepts the ``positions`` keyword on its scoring entry
    #: points — a retrieval frontier may restrict rescoring to a subset of
    #: target attributes.  Custom :class:`MatchingSystem` implementations
    #: without the flag are never passed a frontier.
    supports_target_subset = True

    def __init__(self, config: StandardMatchConfig | None = None,
                 matchers: Sequence[Matcher] | None = None):
        self.config = config or StandardMatchConfig()
        #: True when the zoo is the pure function of ``config`` that
        #: ``build_matchers`` produces — only then are two instances with
        #: equal configs guaranteed to profile identically.  An explicit
        #: ``matchers`` list may carry arbitrary parameterization that the
        #: matcher names/types do not expose, so such instances are only
        #: interchangeable with themselves.
        self.default_zoo = matchers is None
        self.matchers = list(matchers) if matchers is not None \
            else self.config.build_matchers()
        if not self.matchers:
            raise MatchingError("StandardMatch needs at least one matcher")

    # ------------------------------------------------------------------
    # Black-box interface
    # ------------------------------------------------------------------
    def build_target_index(self, target: Database) -> TargetIndex:
        return TargetIndex(target, self.matchers, self.config.sample_limit)

    def score_attribute(self, table: str, sample_values: Sequence,
                        attribute, index: TargetIndex,
                        *, positions: Sequence[int] | None = None,
                        ) -> list[AttributeMatch]:
        """All-target scores for one source attribute sample.

        ``table`` may name a base table or a candidate view; ``attribute``
        is the :class:`~repro.relational.schema.Attribute` being scored and
        ``sample_values`` the bag of values from the (restricted) sample.
        ``positions`` restricts scoring to those target-index positions (a
        retrieval frontier); None scores against every target attribute.
        """
        sample = AttributeSample.from_column(
            table, attribute, list(sample_values),
            limit=self.config.sample_limit)
        profiles = {m.name: m.profile(sample) for m in self.matchers}
        return self._score_profiled(table, attribute, sample, profiles,
                                    index, positions=positions)

    def score_column_profile(self, profile: "ColumnProfile",
                             index: TargetIndex,
                             *, positions: Sequence[int] | None = None,
                             ) -> list[AttributeMatch]:
        """Batch entry point: score a prepared column profile against every
        target attribute (or the frontier subset in ``positions``).

        The profile (from a :class:`~repro.profiling.ProfileStore`) must
        have been built under this scorer's matchers and sample limit; the
        scores are then bit-identical to :meth:`score_attribute` over the
        same column values.
        """
        return self._score_profiled(profile.table, profile.attribute,
                                    profile.sample_view(), profile.profiles,
                                    index, positions=positions)

    def _score_profiled(self, table: str, attribute, sample,
                        profiles, index: TargetIndex,
                        *, positions: Sequence[int] | None = None,
                        ) -> list[AttributeMatch]:
        """Shared scoring half: matcher raws -> Φ confidences -> combined
        evidence, for one source column whose profiles are already built.

        ``positions`` narrows the target side to a frontier subset; the
        Φ normalization then runs over that subset's score distribution
        (the whole point of pruning).  With ``positions=None`` — or a
        frontier covering every position — the arithmetic is exactly the
        historical exhaustive loop.
        """
        target_ids = (list(range(len(index.samples))) if positions is None
                      else list(positions))
        # evidence[slot] collects MatcherEvidence for target_ids[slot].
        evidence: list[list[MatcherEvidence]] = [[] for _ in target_ids]
        for matcher in self.matchers:
            source_profile = profiles[matcher.name]
            target_profiles = index.profiles[matcher.name]
            raw: list[float | None] = []
            for i in target_ids:
                if matcher.applicable(sample, index.samples[i]):
                    raw.append(matcher.score_profiles(source_profile,
                                                      target_profiles[i]))
                else:
                    raw.append(None)
            for slot, (raw_score, conf) in enumerate(
                    zip(raw, confidences_from_scores(raw))):
                if raw_score is None or conf is None:
                    continue
                evidence[slot].append(MatcherEvidence(
                    matcher=matcher.name, weight=matcher.weight,
                    raw_score=raw_score, confidence=conf))
        matches: list[AttributeMatch] = []
        source_ref = AttributeRef(table, attribute.name)
        for slot, i in enumerate(target_ids):
            combined = combine_evidence(evidence[slot])
            if combined is None:
                continue
            target_sample = index.samples[i]
            matches.append(AttributeMatch(
                source=source_ref,
                target=AttributeRef(target_sample.table, target_sample.name),
                score=combined.score,
                confidence=combined.confidence,
                evidence=combined.evidence))
        return matches

    # ------------------------------------------------------------------
    # Whole-schema matching
    # ------------------------------------------------------------------
    def score_all(self, source: Database, target: Database,
                  *, index: TargetIndex | None = None) -> list[AttributeMatch]:
        """Scores for every (source attribute, target attribute) pair."""
        index = index or self.build_target_index(target)
        matches: list[AttributeMatch] = []
        for relation in source:
            matches.extend(self.score_relation(relation, index))
        return matches

    def score_relation(self, relation: Relation, index: TargetIndex,
                       *, store: "ProfileStore | None" = None,
                       ) -> list[AttributeMatch]:
        """Scores from every attribute of one source relation.

        When *store* is given (a :class:`~repro.profiling.ProfileStore`
        built for this scorer), per-attribute profiles are fetched from it
        instead of being rebuilt from raw column values — the
        :class:`~repro.engine.prepared.PreparedSource` fast path, which
        amortizes source-side profiling across engine runs with
        bit-identical scores.

        Confidences are *bidirectional*: the source-side percentile (how a
        target attribute ranks among all targets for this source attribute)
        is combined, by max, with the target-side percentile (how the
        source attribute ranks among this relation's attributes for that
        target).  A pair that is the clear best explanation of a target
        column is a confident match even when sibling target columns crowd
        it out on the source side — e.g. ``grade -> grade1`` whose mean is
        the most extreme of five sibling grade columns (the false-negative
        hazard of Section 3).

        The target-side boost is capped below 1: being *relatively* the
        best partner of a column is weaker evidence than being absolutely
        similar, so rescued matches remain tenuous — they survive moderate
        pruning thresholds but are the first to go as τ rises (the Figure
        21 behaviour).
        """
        matches: list[AttributeMatch] = []
        per_attr: list[list[AttributeMatch]] = []
        for attribute in relation.schema:
            if store is not None:
                per_attr.append(self.score_column_profile(
                    store.base_profile(relation, attribute.name), index))
            else:
                per_attr.append(self.score_attribute(
                    relation.name, relation.column(attribute.name),
                    attribute, index))
        # Target-side normalization across this relation's source attrs.
        by_target: dict[tuple[str, str], list[tuple[int, int]]] = {}
        for i, attr_matches in enumerate(per_attr):
            for j, match in enumerate(attr_matches):
                key = (match.target.table, match.target.attribute)
                by_target.setdefault(key, []).append((i, j))
        adjusted: dict[tuple[int, int], float] = {}
        for key, locations in by_target.items():
            raw = [per_attr[i][j].score for i, j in locations]
            for (i, j), conf in zip(locations, confidences_from_scores(raw)):
                adjusted[(i, j)] = conf if conf is not None else 0.0
        for i, attr_matches in enumerate(per_attr):
            for j, match in enumerate(attr_matches):
                target_side = min(adjusted.get((i, j), 0.0),
                                  _TARGET_SIDE_CAP)
                if target_side > match.confidence:
                    match = dataclasses.replace(match,
                                                confidence=target_side)
                matches.append(match)
        return matches

    def accept(self, match: AttributeMatch, tau: float) -> bool:
        """Acceptance test: relative confidence >= tau AND absolute raw
        score >= the configured floor."""
        return (match.confidence >= tau
                and match.score >= self.config.score_floor)

    def match(self, source: Database, target: Database,
              tau: float = 0.5) -> list[AttributeMatch]:
        """Accepted matches: confidence >= tau and score >= score_floor."""
        if not 0.0 <= tau <= 1.0:
            raise MatchingError(f"tau must be in [0,1], got {tau}")
        return [m for m in self.score_all(source, target)
                if self.accept(m, tau)]
