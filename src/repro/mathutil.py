"""Small shared numeric helpers (normal CDF, mean/std).

Both the matcher-confidence normalization (Section 2.3) and the
well-clustered view family significance test (Section 3.2.2) convert a
z-score through the standard normal CDF Φ; keeping Φ here avoids a scipy
dependency for one function.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["phi", "phi_inverse_threshold", "mean_std"]


def phi(z: float) -> float:
    """Standard normal cumulative distribution function Φ(z)."""
    return 0.5 * (1.0 + math.erf(z / math.sqrt(2.0)))


def phi_inverse_threshold(p: float) -> float:
    """Inverse normal CDF via bisection (used to express thresholds like
    "95% significance" as z cut-offs in tests and diagnostics)."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0,1), got {p}")
    lo, hi = -10.0, 10.0
    for _ in range(200):
        mid = (lo + hi) / 2.0
        if phi(mid) < p:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def mean_std(values: Sequence[float]) -> tuple[float, float]:
    """Population mean and standard deviation; (0, 0) for empty input."""
    n = len(values)
    if n == 0:
        return 0.0, 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return mean, math.sqrt(variance)
