"""Contextual schema matching — the paper's core contribution (Section 3).

The pipeline itself is driven by :class:`~repro.engine.MatchEngine` (see
:mod:`repro.engine`); :class:`ContextMatch`, configured by
:class:`ContextMatchConfig`, remains as a backward-compatible facade.
Results arrive as :class:`MatchResult` holding :class:`ContextualMatch`
triples ``(RS.s, RT.t, condition)`` plus a per-stage
:class:`~repro.engine.RunReport`.
"""

from .candidates import (CandidateViewGenerator, FamilyAssessor,
                         InferenceContext, InferenceStats, NaiveInfer,
                         SrcClassInfer, TgtClassInfer, make_generator,
                         set_partitions)
from .categorical import (CategoricalPolicy, categorical_attributes,
                          is_categorical, non_categorical_attributes)
from .conjunctive import refine_conjunctive
from .contextmatch import ContextMatch
from .model import (CandidateScore, ContextMatchConfig, ContextualMatch,
                    MatchResult)
from .score import score_family_candidates, score_view_candidates
from .serialize import (attribute_match_from_dict, attribute_match_to_dict,
                        condition_from_dict, condition_to_dict,
                        config_from_dict, config_to_dict, match_from_dict,
                        match_to_dict, report_from_dict, report_to_dict,
                        result_from_dict, result_to_dict)
from .select import multi_table, qual_table, select_matches

__all__ = [
    "ContextMatch",
    "ContextMatchConfig",
    "ContextualMatch",
    "MatchResult",
    "CandidateScore",
    "CandidateViewGenerator",
    "FamilyAssessor",
    "InferenceContext",
    "InferenceStats",
    "NaiveInfer",
    "SrcClassInfer",
    "TgtClassInfer",
    "make_generator",
    "set_partitions",
    "CategoricalPolicy",
    "is_categorical",
    "categorical_attributes",
    "non_categorical_attributes",
    "condition_to_dict",
    "condition_from_dict",
    "config_to_dict",
    "config_from_dict",
    "match_to_dict",
    "match_from_dict",
    "attribute_match_to_dict",
    "attribute_match_from_dict",
    "report_to_dict",
    "report_from_dict",
    "result_to_dict",
    "result_from_dict",
    "score_view_candidates",
    "score_family_candidates",
    "multi_table",
    "qual_table",
    "select_matches",
    "refine_conjunctive",
]
