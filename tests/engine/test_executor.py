"""Tests for the parallel match executor: backend selection (flags and
environment), submission ordering, chunked scheduling, throughput
reporting, worker-side artifact caching, and serial/thread/process
bit-identity."""

import pytest

from repro import ContextMatchConfig, MatchEngine
from repro.context.serialize import (result_to_dict, throughput_from_dict,
                                     throughput_to_dict)
from repro.engine import (BatchResult, ExecutorConfig, MatchExecutor,
                          ThroughputReport)
from repro.engine.executor import BACKEND_ENV, effective_parallelism
from repro.errors import EngineError


@pytest.fixture(scope="module")
def retail_batch():
    """Three small retail sources plus one shared target."""
    from repro.datagen import make_retail_workload
    workloads = [make_retail_workload(target="ryan", gamma=2, n_source=150,
                                      seed=60 + i) for i in range(3)]
    return [w.source for w in workloads], workloads[0].target


CONFIG = ContextMatchConfig(inference="src", seed=5)


def _comparable(result):
    """Everything pinned across backends: matches, prototype scores and
    deterministic stage counts (timings and the process-global token-cache
    telemetry legitimately vary run to run)."""
    payload = result_to_dict(result)
    payload.pop("elapsed_seconds")
    report = payload["report"]
    report.pop("elapsed_seconds")
    for stage in report["stages"]:
        stage.pop("elapsed_seconds")
        for key in ("token_cache_hits", "token_cache_misses"):
            stage["counts"].pop(key, None)
    return payload


class TestExecutorConfig:
    def test_defaults_to_serial(self):
        config = ExecutorConfig()
        assert config.backend == "serial"
        assert config.resolved_workers() == 1

    def test_rejects_unknown_backend(self):
        with pytest.raises(EngineError, match="unknown executor backend"):
            ExecutorConfig(backend="threads")

    def test_rejects_bad_worker_count(self):
        with pytest.raises(EngineError, match="max_workers"):
            ExecutorConfig(backend="process", max_workers=0)

    def test_process_workers_default_to_host_parallelism(self):
        config = ExecutorConfig(backend="process")
        assert config.resolved_workers() == effective_parallelism()

    def test_for_jobs_mapping(self):
        assert ExecutorConfig.for_jobs(None).backend == "serial"
        assert ExecutorConfig.for_jobs(1).backend == "serial"
        four = ExecutorConfig.for_jobs(4)
        assert four.backend == "process"
        assert four.resolved_workers() == 4

    def test_for_jobs_rejects_non_positive(self):
        with pytest.raises(EngineError, match="jobs must be >= 1"):
            ExecutorConfig.for_jobs(0)
        with pytest.raises(EngineError, match="jobs must be >= 1"):
            ExecutorConfig.for_jobs(-2)

    def test_rejects_unknown_transport(self):
        with pytest.raises(EngineError, match="unknown executor transport"):
            ExecutorConfig(backend="process", transport="tcp")

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(EngineError, match="chunk_size must be >= 1"):
            ExecutorConfig(backend="thread", chunk_size=0)

    def test_resolved_chunk_size_targets_four_rounds_per_worker(self):
        config = ExecutorConfig(backend="process", max_workers=2)
        assert config.resolved_chunk_size(80) == 10  # 8 chunks, 4/worker
        assert config.resolved_chunk_size(3) == 1    # small batches spread
        assert config.resolved_chunk_size(0) == 1
        explicit = ExecutorConfig(backend="process", max_workers=2,
                                  chunk_size=5)
        assert explicit.resolved_chunk_size(80) == 5


class TestBackendSelection:
    """``for_jobs``: explicit ``--backend``, the REPRO_EXECUTOR_BACKEND
    environment override, and their interaction with ``--jobs``."""

    def test_explicit_backend(self):
        config = ExecutorConfig.for_jobs(3, "thread")
        assert config.backend == "thread"
        assert config.resolved_workers() == 3
        assert ExecutorConfig.for_jobs(None, "process").backend == "process"
        assert ExecutorConfig.for_jobs(1, "serial").backend == "serial"

    def test_serial_with_multiple_jobs_is_a_contradiction(self):
        with pytest.raises(EngineError, match="runs in-process"):
            ExecutorConfig.for_jobs(4, "serial")

    def test_rejects_unknown_explicit_backend(self):
        with pytest.raises(EngineError, match="unknown executor backend"):
            ExecutorConfig.for_jobs(2, "fibers")

    def test_env_override_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert ExecutorConfig.for_jobs(None).backend == "thread"
        four = ExecutorConfig.for_jobs(4)
        assert four.backend == "thread"
        assert four.resolved_workers() == 4

    def test_explicit_backend_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "thread")
        assert ExecutorConfig.for_jobs(2, "process").backend == "process"

    def test_empty_env_is_ignored(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "")
        assert ExecutorConfig.for_jobs(None).backend == "serial"

    def test_invalid_env_backend_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "cluster")
        with pytest.raises(EngineError, match=BACKEND_ENV):
            ExecutorConfig.for_jobs(2)


class TestSerialBackend:
    def test_match_many_equals_engine_loop(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        direct = [engine.match(source, prepared) for source in sources]
        batch = MatchExecutor().match_many(engine, sources, prepared)
        assert isinstance(batch, BatchResult)
        assert len(batch) == len(sources)
        for loop_result, batch_result in zip(direct, batch):
            assert loop_result.matches == batch_result.matches
            assert (loop_result.standard_matches
                    == batch_result.standard_matches)

    def test_throughput_report_shape(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        executor = MatchExecutor()
        batch = executor.match_many(engine, sources, target)
        report = batch.throughput
        assert isinstance(report, ThroughputReport)
        assert report.backend == "serial"
        assert report.workers == 1
        assert report.tasks == len(sources)
        assert len(report.task_seconds) == len(sources)
        assert all(t > 0.0 for t in report.task_seconds)
        assert report.wall_seconds >= max(report.task_seconds)
        assert report.prepare_transfer_bytes == 0
        assert report.tasks_per_second > 0.0
        assert executor.last_throughput is report

    def test_batch_result_is_sequence_like(self, retail_batch):
        sources, target = retail_batch
        batch = MatchExecutor().match_many(MatchEngine(CONFIG),
                                           sources[:2], target)
        assert len(batch) == 2
        assert batch[0] is batch.results[0]
        assert list(batch) == batch.results

    def test_serial_backend_fires_observers(self, retail_batch):
        """In-process batches run on the caller's engine, so observer
        hooks fire exactly as in a hand-written loop."""
        from repro.engine import EngineObserver

        class Recorder(EngineObserver):
            def __init__(self):
                self.runs = 0
                self.stages = []

            def on_run_start(self, source, prepared):
                self.runs += 1

            def on_stage_end(self, report, state):
                self.stages.append(report.name)

        sources, target = retail_batch
        recorder = Recorder()
        engine = MatchEngine(CONFIG, observers=[recorder])
        MatchExecutor().match_many(engine, sources[:2], target)
        assert recorder.runs == 2
        assert recorder.stages.count("select") == 2

    def test_engine_match_many_routes_through_executor(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        executor = MatchExecutor()
        results = engine.match_many(sources[:2], target, executor=executor)
        assert isinstance(results, list) and len(results) == 2
        assert executor.last_throughput.tasks == 2


class TestThreadBackend:
    def test_match_many_bit_identical_to_serial(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        serial = MatchExecutor().match_many(engine, sources, prepared)
        with MatchExecutor(ExecutorConfig(backend="thread",
                                          max_workers=2)) as executor:
            threaded = executor.match_many(engine, sources, prepared)
        assert [_comparable(r) for r in serial] \
            == [_comparable(r) for r in threaded]

    def test_shares_artifact_with_zero_transfer(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        with MatchExecutor(ExecutorConfig(backend="thread",
                                          max_workers=2)) as executor:
            batch = executor.match_many(engine, sources, target)
        report = batch.throughput
        assert report.backend == "thread"
        assert report.workers == 2
        assert report.transport is None
        assert report.prepare_transfer_bytes == 0
        assert report.shm_bytes == 0
        assert report.chunks >= 1
        assert len(report.task_seconds) == len(sources)

    def test_thread_backend_fires_observers(self, retail_batch):
        """Thread batches run on the caller's engine, so observers fire
        (interleaved across worker threads)."""
        from repro.engine import EngineObserver

        class Recorder(EngineObserver):
            def __init__(self):
                self.runs = 0

            def on_run_start(self, source, prepared):
                self.runs += 1

        sources, target = retail_batch
        recorder = Recorder()
        engine = MatchEngine(CONFIG, observers=[recorder])
        with MatchExecutor(ExecutorConfig(backend="thread",
                                          max_workers=2)) as executor:
            executor.match_many(engine, sources, target)
        assert recorder.runs == len(sources)

    def test_reversed_sweep_bit_identical(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        serial = MatchExecutor().match_reversed_many(engine, sources[0],
                                                     [target])
        with MatchExecutor(ExecutorConfig(backend="thread",
                                          max_workers=2)) as executor:
            threaded = executor.match_reversed_many(engine, sources[0],
                                                    [target])
        assert [_comparable(r) for r in serial] \
            == [_comparable(r) for r in threaded]

    def test_worker_errors_propagate(self):
        with MatchExecutor(ExecutorConfig(backend="thread",
                                          max_workers=1)) as executor:
            with pytest.raises(ZeroDivisionError):
                executor.run_tasks(_failing_task, [1])


class TestChunkedScheduling:
    """Bit-identity and submission-order stability across chunk sizes."""

    CHUNK_SIZES = (1, 2, 3, 7)  # 1, mid, == batch, > batch (3 sources)

    def test_match_many_chunk_grid(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        reference = [_comparable(r) for r in
                     MatchExecutor().match_many(engine, sources, prepared)]
        for chunk_size in self.CHUNK_SIZES:
            config = ExecutorConfig(backend="thread", max_workers=2,
                                    chunk_size=chunk_size)
            with MatchExecutor(config) as executor:
                batch = executor.match_many(engine, sources, prepared)
            assert [_comparable(r) for r in batch] == reference, chunk_size
            expected = -(-len(sources) // chunk_size)
            assert batch.throughput.chunks == expected

    def test_match_many_chunk_grid_process(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        reference = [_comparable(r) for r in
                     MatchExecutor().match_many(engine, sources, prepared)]
        for chunk_size in (1, 7):
            config = ExecutorConfig(backend="process", max_workers=2,
                                    chunk_size=chunk_size)
            with MatchExecutor(config) as executor:
                batch = executor.match_many(engine, sources, prepared)
            assert [_comparable(r) for r in batch] == reference, chunk_size

    def test_route_many_chunk_grid(self):
        from repro import TargetRepository
        from repro.datagen import build_scenario, get_scenario
        events = build_scenario(get_scenario("events").resized(50))
        retail = build_scenario(get_scenario("retail").resized(50))
        engine = MatchEngine()
        repo = TargetRepository(engine)
        repo.add(events.target)
        repo.add(retail.target)
        sources = [events.source, retail.source, events.source]
        reference = [[(s.token, s.score, s.n_matches) for s in r.ranking]
                     for r in repo.route_many(sources)]
        for chunk_size in self.CHUNK_SIZES:
            config = ExecutorConfig(backend="thread", max_workers=2,
                                    chunk_size=chunk_size)
            with MatchExecutor(config) as executor:
                routed = repo.route_many(sources, executor=executor)
            got = [[(s.token, s.score, s.n_matches) for s in r.ranking]
                   for r in routed]
            assert got == reference, chunk_size


def _probe_worker_cache(_payload):
    """Worker-side probe: size and lifetime evictions of the artifact
    cache in the (sole) worker process."""
    from repro.engine import executor as mod
    return len(mod._ARTIFACTS), mod._EVICTIONS


class TestWorkerCacheBounds:
    def test_cycling_artifacts_keeps_worker_cache_bounded(self):
        """Regression: N distinct targets through ONE pool must not grow
        the worker cache without limit — the bounded LRU evicts, and the
        evictions surface on the batch reports."""
        from repro.datagen import make_retail_workload
        from repro.engine import executor as mod
        engine = MatchEngine(CONFIG)
        workloads = [make_retail_workload(target="ryan", gamma=2,
                                          n_source=60, seed=200 + i)
                     for i in range(mod._ARTIFACT_SLOTS + 2)]
        reported = 0
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=1)) as executor:
            pool = None
            for workload in workloads:
                prepared = engine.prepare(workload.target)
                batch = executor.match_many(engine, [workload.source],
                                            prepared)
                reported += batch.throughput.artifact_evictions
                if pool is None:
                    pool = executor._pool
            assert executor._pool is pool  # one pool served every artifact
            size, lifetime = executor.run_tasks(
                _probe_worker_cache, [None]).results[0]
            # The parent-side memos and segment bag stay bounded too.
            assert len(executor._segments.segments) <= executor._MEMO_SLOTS
        assert size <= mod._ARTIFACT_SLOTS
        assert reported >= 2          # 6 artifacts through 4 slots
        assert lifetime == reported   # every eviction was surfaced
        assert executor.counters["artifact_evictions"] == reported


class TestProcessBackend:
    def test_match_many_bit_identical_to_serial(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        serial = MatchExecutor().match_many(engine, sources, prepared)
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=2)) as executor:
            process = executor.match_many(engine, sources, prepared)
        assert [_comparable(r) for r in serial] \
            == [_comparable(r) for r in process]

    def test_results_in_submission_order(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=2)) as executor:
            batch = executor.match_many(engine, sources, target)
        serial = [engine.match(s, engine.prepare(target)) for s in sources]
        for expected, got in zip(serial, batch):
            assert {str(m) for m in expected.matches} \
                == {str(m) for m in got.matches}

    def test_reports_transfer_bytes_and_workers(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=2)) as executor:
            batch = executor.match_many(engine, sources[:2], target)
        report = batch.throughput
        assert report.backend == "process"
        assert report.workers == 2
        assert report.prepare_transfer_bytes > 0
        assert len(report.task_seconds) == 2

    def test_pool_and_payload_reused_across_batches(self, retail_batch):
        """Same prepared artifact, consecutive batches: the pickled payload
        is shipped (counted) identically and the pool object survives."""
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=2)) as executor:
            first = executor.match_many(engine, sources[:1], prepared)
            pool = executor._pool
            second = executor.match_many(engine, sources[1:2], prepared)
            assert executor._pool is pool
            assert (first.throughput.prepare_transfer_bytes
                    == second.throughput.prepare_transfer_bytes)
            # One shared EngineArtifact, pickled exactly once: the memos
            # hit instead of accumulating per batch.
            assert len(executor._artifacts) == 1
            assert len(executor._shipped) == 1
        assert executor._pool is None  # context exit closed it

    def test_artifact_memo_invalidated_by_stage_mutation(self,
                                                         retail_batch):
        """Swapping engine.stages between batches must rebuild the shipped
        artifact — both backends always run the live pipeline."""
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        prepared = engine.prepare(target)
        executor = MatchExecutor()
        first = executor._artifact_for(engine, prepared)
        assert executor._artifact_for(engine, prepared) is first  # memo hit
        engine.stages = [s for s in engine.stages
                         if s.name != "conjunctive-refine"]
        second = executor._artifact_for(engine, prepared)
        assert second is not first
        assert [s.name for s in second.stages] \
            == [s.name for s in engine.stages]

    def test_empty_process_batch_spins_no_pool(self, retail_batch):
        _, target = retail_batch
        engine = MatchEngine(CONFIG)
        executor = MatchExecutor(ExecutorConfig(backend="process"))
        batch = executor.match_many(engine, [], target)
        assert batch.results == []
        assert executor._pool is None  # early return, no workers spawned

    def test_artifact_memos_are_bounded(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        executor = MatchExecutor()
        for _ in range(executor._MEMO_SLOTS + 3):
            # A fresh PreparedTarget per batch — distinct memo keys.
            executor.match_many(engine, sources[:1], target)
        assert len(executor._artifacts) <= executor._MEMO_SLOTS
        assert len(executor._shipped) <= executor._MEMO_SLOTS

    def test_reversed_sweep_bit_identical(self, retail_batch):
        sources, target = retail_batch
        engine = MatchEngine(CONFIG)
        targets = [target]
        serial = MatchExecutor().match_reversed_many(engine, sources[0],
                                                     targets)
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=2)) as executor:
            process = executor.match_reversed_many(engine, sources[0],
                                                   targets)
        assert [_comparable(r) for r in serial] \
            == [_comparable(r) for r in process]
        assert all(r.report.role_reversed for r in process)

    def test_worker_errors_propagate(self):
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=1)) as executor:
            with pytest.raises(ZeroDivisionError):
                executor.run_tasks(_failing_task, [1])

    def test_empty_batch(self, retail_batch):
        _, target = retail_batch
        engine = MatchEngine(CONFIG)
        batch = MatchExecutor(ExecutorConfig(backend="process")) \
            .match_many(engine, [], target)
        assert batch.results == []
        assert batch.throughput.tasks == 0
        assert batch.throughput.tasks_per_second == 0.0


def _failing_task(payload):
    return payload / 0


class TestThroughputCodec:
    def test_round_trip(self):
        report = ThroughputReport(backend="process", workers=4, tasks=3,
                                  wall_seconds=1.5,
                                  task_seconds=[0.5, 0.4, 0.6],
                                  prepare_transfer_bytes=1234)
        payload = throughput_to_dict(report)
        assert payload["busy_seconds"] == pytest.approx(1.5)
        assert payload["tasks_per_second"] == pytest.approx(2.0)
        restored = throughput_from_dict(payload)
        assert restored == report

    def test_round_trip_with_transport_counters(self):
        report = ThroughputReport(backend="process", workers=4, tasks=8,
                                  wall_seconds=1.0,
                                  task_seconds=[0.1] * 8,
                                  prepare_transfer_bytes=512,
                                  transport="shm", chunks=3,
                                  shm_bytes=4096, artifact_evictions=2)
        payload = throughput_to_dict(report)
        assert payload["transport"] == "shm"
        assert payload["chunks"] == 3
        assert payload["shm_bytes"] == 4096
        assert payload["artifact_evictions"] == 2
        assert throughput_from_dict(payload) == report

    def test_legacy_payload_parses_with_counter_defaults(self):
        """Pre-transport payloads (no transport/chunk/shm fields) still
        parse — the counters default to their in-process values."""
        payload = {"backend": "process", "workers": 2, "tasks": 1,
                   "wall_seconds": 0.5, "task_seconds": [0.5],
                   "prepare_transfer_bytes": 10}
        report = throughput_from_dict(payload)
        assert report.transport is None
        assert report.chunks == 0
        assert report.shm_bytes == 0
        assert report.artifact_evictions == 0

    def test_derived_fields_not_trusted_on_parse(self):
        payload = throughput_to_dict(ThroughputReport(
            backend="serial", workers=1, tasks=1, wall_seconds=2.0,
            task_seconds=[2.0]))
        payload["busy_seconds"] = 999.0  # ignored: derived, not stored
        assert throughput_from_dict(payload).busy_seconds \
            == pytest.approx(2.0)
