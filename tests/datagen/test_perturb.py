"""Property-style invariant tests for the perturbation toolkit.

For every perturbation kind across a seeded parameter grid the core
contract must hold: ground-truth references stay resolvable, condition
value sets survive verbatim, schemas stay well-formed, and row counts are
preserved (every shipped perturbation is row-count-preserving).
"""

from __future__ import annotations

import pytest

from repro.datagen import (FormatDrift, GroundTruth, InjectNulls,
                           RenameAttributes, ShrinkVocabulary, ShuffleRows,
                           Workload, make_events_workload, make_perturbation,
                           make_retail_workload, PERTURBATIONS)
from repro.datagen.perturb import _SYNTHETIC_WORDS, _abbreviate
from repro.errors import ReproError
from repro.relational.types import is_missing

import numpy as np


@pytest.fixture(scope="module")
def retail():
    generated = make_retail_workload(target="ryan", n_source=80,
                                     n_target=40, gamma=2, seed=3)
    return Workload(source=generated.source, target=generated.target,
                    ground_truth=generated.ground_truth)


@pytest.fixture(scope="module")
def events():
    generated = make_events_workload(n_source=60, n_target=30, gamma=4,
                                     seed=7)
    return Workload(source=generated.source, target=generated.target,
                    ground_truth=generated.ground_truth)


#: The seeded parameter grid: every kind in several configurations.
GRID = [
    ("nulls", {"rate": 0.0, "side": "both"}),
    ("nulls", {"rate": 0.1, "side": "source"}),
    ("nulls", {"rate": 0.5, "side": "both"}),
    ("format_drift", {"rate": 0.5, "side": "source"}),
    ("format_drift", {"rate": 1.0, "decimals": 0, "side": "both"}),
    ("rename", {"style": "abbrev", "side": "target"}),
    ("rename", {"style": "abbrev", "side": "both"}),
    ("rename", {"style": "prefix", "side": "source"}),
    ("shrink_vocab", {"rate": 0.2, "side": "target"}),
    ("shrink_vocab", {"rate": 0.9, "side": "both"}),
    ("shuffle", {"side": "source"}),
    ("shuffle", {"side": "both"}),
]


def _assert_invariants(original: Workload, perturbed: Workload) -> None:
    # Row counts preserved, schemas well-formed (same table set and arity).
    for side in ("source", "target"):
        before = {r.name: r for r in original.tables(side)}
        after = {r.name: r for r in perturbed.tables(side)}
        assert set(before) == set(after)
        for name, relation in after.items():
            assert len(relation) == len(before[name])
            assert len(relation.schema) == len(before[name].schema)
            names = relation.schema.attribute_names
            assert len(set(names)) == len(names)
    # Ground truth stays valid: same cardinality, resolvable refs, intact
    # condition value sets.
    assert len(perturbed.ground_truth) == len(original.ground_truth)
    for match in perturbed.ground_truth:
        source_schema = perturbed.source.relation(match.source.table).schema
        source_schema.attribute(match.source.attribute)
        source_schema.attribute(match.condition_attribute)
        perturbed.target.relation(match.target.table).schema.attribute(
            match.target.attribute)
    assert ({m.condition_values for m in perturbed.ground_truth}
            == {m.condition_values for m in original.ground_truth})


@pytest.mark.parametrize("kind,params", GRID)
@pytest.mark.parametrize("seed", [0, 17])
@pytest.mark.parametrize("workload_fixture", ["retail", "events"])
def test_invariants_hold(kind, params, seed, workload_fixture, request):
    original = request.getfixturevalue(workload_fixture)
    perturbation = make_perturbation(kind, **params)
    perturbed = perturbation.apply(original,
                                   np.random.default_rng(seed))
    _assert_invariants(original, perturbed)


@pytest.mark.parametrize("kind,params", GRID)
def test_seeded_application_is_deterministic(kind, params, retail):
    perturbation = make_perturbation(kind, **params)
    first = perturbation.apply(retail, np.random.default_rng(5))
    second = perturbation.apply(retail, np.random.default_rng(5))
    from repro.datagen import workload_fingerprint
    assert workload_fingerprint(first) == workload_fingerprint(second)


class TestInjectNulls:
    def test_condition_attribute_never_nulled(self, retail):
        perturbed = InjectNulls(rate=0.9, side="both").apply(
            retail, np.random.default_rng(1))
        items = perturbed.source.relation("items")
        assert not any(is_missing(v) for v in items.column("ItemType"))
        # Unprotected columns degrade heavily at rate=0.9.
        assert sum(is_missing(v) for v in items.column("Name")) > 40

    def test_rate_zero_is_identity_on_values(self, retail):
        perturbed = InjectNulls(rate=0.0).apply(retail,
                                                np.random.default_rng(1))
        items = perturbed.source.relation("items")
        assert items.column("Name") == retail.source.relation(
            "items").column("Name")

    def test_bad_rate_rejected(self):
        with pytest.raises(ReproError, match="rate"):
            InjectNulls(rate=1.5)


class TestFormatDrift:
    def test_textual_drift_is_case_only(self, retail):
        perturbed = FormatDrift(rate=1.0, side="target").apply(
            retail, np.random.default_rng(2))
        for relation in retail.tables("target"):
            after = perturbed.target.relation(relation.name)
            for attr in relation.schema:
                if not attr.dtype.is_textual:
                    continue
                for old, new in zip(relation.column(attr.name),
                                    after.column(attr.name)):
                    assert str(old).casefold() == str(new).casefold()

    def test_float_drift_rounds(self, retail):
        perturbed = FormatDrift(rate=1.0, decimals=0, side="target").apply(
            retail, np.random.default_rng(2))
        prices = perturbed.target.relation("books").column("price")
        assert all(float(v) == round(float(v), 0) for v in prices)

    def test_source_condition_attribute_unchanged(self, retail):
        perturbed = FormatDrift(rate=1.0, side="both").apply(
            retail, np.random.default_rng(2))
        assert (perturbed.source.relation("items").column("ItemType")
                == retail.source.relation("items").column("ItemType"))


class TestRenameAttributes:
    def test_abbreviation_examples(self):
        assert _abbreviate("ListPrice") == "LstPrc"
        assert _abbreviate("price") == "prc"
        assert _abbreviate("album_title") == "albmttl"

    def test_ground_truth_follows_target_renames(self, retail):
        perturbed = RenameAttributes(side="target").apply(
            retail, np.random.default_rng(3))
        # Every target ref resolves against the renamed schema, and at
        # least one attribute actually changed name.
        changed = False
        for match in perturbed.ground_truth:
            schema = perturbed.target.relation(match.target.table).schema
            schema.attribute(match.target.attribute)
            changed = changed or match.target.attribute not in (
                retail.target.relation(match.target.table).schema
                .attribute_names)
        assert changed

    def test_source_rename_rewrites_condition_attribute(self, retail):
        perturbed = RenameAttributes(side="source", style="prefix").apply(
            retail, np.random.default_rng(3))
        for match in perturbed.ground_truth:
            assert match.condition_attribute == "c_ItemType"
            assert match.source.attribute.startswith("c_")

    def test_collisions_resolved(self):
        from repro.relational.instance import Database, Relation

        relation = Relation.infer_schema("t", {
            "price": [1.0], "prce": [2.0], "pierce": [3.0]})
        workload = Workload(
            source=Database.from_relations("s", [relation]),
            target=Database.from_relations("t2", [relation.rename("u")]),
            ground_truth=GroundTruth())
        perturbed = RenameAttributes(side="both").apply(
            workload, np.random.default_rng(0))
        names = perturbed.source.relation("t").schema.attribute_names
        assert len(set(names)) == 3


class TestShrinkVocabulary:
    def test_replaces_from_synthetic_pool(self, retail):
        perturbed = ShrinkVocabulary(rate=1.0, side="target").apply(
            retail, np.random.default_rng(4))
        titles = perturbed.target.relation("books").column("title")
        pool = set(_SYNTHETIC_WORDS)
        assert all(set(str(v).split()) <= pool for v in titles
                   if not is_missing(v))

    def test_shrinks_overlap(self, retail):
        def overlap(workload):
            src = set(workload.source.relation("items").column("Name"))
            tgt = set(workload.target.relation("books").column("title"))
            return len(src & tgt)

        perturbed = ShrinkVocabulary(rate=1.0, side="target").apply(
            retail, np.random.default_rng(4))
        assert overlap(perturbed) <= overlap(retail)

    def test_numeric_columns_untouched(self, retail):
        perturbed = ShrinkVocabulary(rate=1.0, side="target").apply(
            retail, np.random.default_rng(4))
        assert (perturbed.target.relation("books").column("price")
                == retail.target.relation("books").column("price"))


class TestShuffleRows:
    def test_preserves_value_multisets(self, retail):
        perturbed = ShuffleRows(side="both").apply(
            retail, np.random.default_rng(6))
        for side in ("source", "target"):
            for relation in retail.tables(side):
                after = (perturbed.source if side == "source"
                         else perturbed.target).relation(relation.name)
                for attr in relation.schema.attribute_names:
                    assert (sorted(map(repr, relation.column(attr)))
                            == sorted(map(repr, after.column(attr))))

    def test_actually_permutes(self, retail):
        perturbed = ShuffleRows(side="source").apply(
            retail, np.random.default_rng(6))
        assert (perturbed.source.relation("items").column("ItemID")
                != retail.source.relation("items").column("ItemID"))


class TestFactory:
    def test_registry_covers_all_kinds(self):
        assert set(PERTURBATIONS) == {"nulls", "format_drift", "rename",
                                      "shrink_vocab", "shuffle"}

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="unknown perturbation"):
            make_perturbation("entropy-storm")

    def test_bad_params(self):
        with pytest.raises(ReproError, match="bad parameters"):
            make_perturbation("nulls", saturation=2)

    def test_bad_side_rejected(self):
        with pytest.raises(ReproError, match="side"):
            make_perturbation("shuffle", side="sideways")
