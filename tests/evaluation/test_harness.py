"""Tests for runner/reporting helpers and smoke tests of the experiment
drivers (tiny parameterizations — full sweeps live in benchmarks/)."""

import pytest

from repro import ContextMatch
from repro.context.serialize import match_to_dict
from repro.evaluation import (EngineRunner, format_series, format_table,
                              seed_pairs, summarize)
from repro.evaluation.experiments import (grades_sigma_sweep, omega_sweep,
                                          run_grades, run_retail,
                                          strawman_comparison)
from repro.context.model import ContextMatchConfig


class TestSummarize:
    def test_empty(self):
        avg = summarize([])
        assert avg.mean == 0.0 and avg.n == 0

    def test_mean_std(self):
        avg = summarize([1.0, 3.0])
        assert avg.mean == 2.0 and avg.std == 1.0 and avg.n == 2

    def test_str(self):
        assert "±" in str(summarize([1.0, 2.0]))


class TestSeedPairs:
    def test_deterministic(self):
        assert seed_pairs(3) == seed_pairs(3)

    def test_distinct(self):
        pairs = seed_pairs(5)
        assert len(set(pairs)) == 5


class TestReporting:
    def test_format_table(self):
        text = format_table(["x", "y"], [[1, 2.5], ["long-value", 3.0]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "long-value" in text
        assert "2.5" in text

    def test_format_series(self):
        data = {1: {"a": 10.0, "b": 20.0}, 2: {"a": 30.0}}
        text = format_series("title", "x", data, ["a", "b"])
        assert "title" in text
        assert "nan" in text  # missing series point rendered explicitly


class TestDrivers:
    def test_run_retail(self):
        config = ContextMatchConfig(inference="src", seed=3)
        metrics, elapsed = run_retail("ryan", config, workload_seed=7,
                                      n_source=200)
        assert 0.0 <= metrics.fmeasure <= 100.0
        assert elapsed > 0.0

    def test_run_grades(self):
        config = ContextMatchConfig(inference="src", early_disjuncts=False,
                                    seed=3)
        metrics, elapsed = run_grades(10.0, config, workload_seed=7)
        assert 0.0 <= metrics.accuracy <= 100.0
        assert elapsed > 0.0

    def test_omega_sweep_shape(self):
        data = omega_sweep("ryan", [5.0], inference="src", repeats=1)
        assert set(data) == {5.0}
        assert set(data[5.0]) == {"disjearly", "disjlate"}

    def test_strawman_shape(self):
        data = strawman_comparison(["ryan"], repeats=1)
        assert set(data["ryan"]) == {"qualtable", "multitable"}

    def test_grades_sweep_shape(self):
        data = grades_sigma_sweep([10.0], repeats=1)
        assert set(data[10.0]) == {"src", "tgt", "naive"}


class TestEngineRunner:
    def test_prepares_each_target_once_across_configs(self, retail_workload):
        runner = EngineRunner(max_prepared=4)
        for omega in (5.0, 10.0):
            config = ContextMatchConfig(inference="src", omega=omega, seed=3)
            result = runner.run(retail_workload.source,
                                retail_workload.target, config)
            assert result.report.target_prepared
        assert len(runner._prepared) == 1

    def test_results_match_fresh_runs(self, retail_workload):
        config = ContextMatchConfig(inference="src", seed=3)
        runner_result = EngineRunner().run(
            retail_workload.source, retail_workload.target, config)
        fresh = ContextMatch(config).run(retail_workload.source,
                                         retail_workload.target)
        assert ([match_to_dict(m) for m in runner_result.matches]
                == [match_to_dict(m) for m in fresh.matches])

    def test_lru_eviction(self, retail_workload, grades_workload):
        runner = EngineRunner(max_prepared=1)
        config = ContextMatchConfig(inference="src", seed=3)
        runner.run(retail_workload.source, retail_workload.target, config)
        runner.run(grades_workload.source, grades_workload.target, config)
        assert len(runner._prepared) == 1

    def test_distinct_standard_configs_get_distinct_preparations(
            self, retail_workload):
        from repro.matching import StandardMatchConfig
        runner = EngineRunner()
        runner.run(retail_workload.source, retail_workload.target,
                   ContextMatchConfig(inference="src", seed=3))
        runner.run(retail_workload.source, retail_workload.target,
                   ContextMatchConfig(
                       inference="src", seed=3,
                       standard=StandardMatchConfig(sample_limit=100)))
        assert len(runner._prepared) == 2
