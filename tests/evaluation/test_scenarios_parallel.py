"""Tests for the scenario batch path: ``run_scenarios`` over the serial
and process executor backends, ordering, and executor-counter round-trips
(the full 20-scenario bit-identity grid runs under ``pytest -m golden``)."""

import pytest

from repro.context.serialize import throughput_from_dict, throughput_to_dict
from repro.engine import BatchResult, ExecutorConfig, MatchExecutor
from repro.evaluation import golden_payload, run_scenario, run_scenarios
from repro.evaluation.scenarios import scenario_result_to_dict

#: Cheap tier-1 slice of the registry: two families, one perturbed.
NAMES = ("events", "retail-nulls")


@pytest.fixture(scope="module")
def serial_batch():
    return run_scenarios(NAMES)


class TestRunScenariosSerial:
    def test_returns_batch_in_input_order(self, serial_batch):
        assert isinstance(serial_batch, BatchResult)
        assert [r.scenario for r in serial_batch] == list(NAMES)

    def test_equals_individual_runs(self, serial_batch):
        for name, batched in zip(NAMES, serial_batch):
            assert golden_payload(run_scenario(name)) \
                == golden_payload(batched)

    def test_throughput_counts_tasks(self, serial_batch):
        report = serial_batch.throughput
        assert report.backend == "serial"
        assert report.tasks == len(NAMES)
        assert len(report.task_seconds) == len(NAMES)
        assert report.prepare_transfer_bytes == 0

    def test_accepts_spec_objects_and_names(self):
        from repro.datagen import get_scenario
        spec = get_scenario("events").resized(60)
        batch = run_scenarios([spec, "events"])
        assert batch[0].spec.size == 60
        assert batch[1].scenario == "events"


class TestRunScenariosProcess:
    def test_bit_identical_to_serial(self, serial_batch):
        with MatchExecutor(ExecutorConfig(backend="process",
                                          max_workers=2)) as executor:
            process = run_scenarios(NAMES, executor=executor)
        assert [golden_payload(r) for r in serial_batch] \
            == [golden_payload(r) for r in process]
        # Full per-stage reports come back intact from the workers.
        for result in process:
            assert [s.name for s in result.report.stages] == [
                "standard-match", "infer-views", "score-candidates",
                "select", "conjunctive-refine"]
        assert process.throughput.backend == "process"
        assert process.throughput.workers == 2

    def test_results_serialize_with_executor_counters(self, serial_batch):
        """The CLI's batch document round-trips: every result through the
        scenario codec, the throughput through the report codec."""
        payload = {
            "results": [scenario_result_to_dict(r) for r in serial_batch],
            "executor": throughput_to_dict(serial_batch.throughput),
        }
        restored = throughput_from_dict(payload["executor"])
        assert restored == serial_batch.throughput
        assert payload["executor"]["workers"] == 1
        assert len(payload["executor"]["task_seconds"]) == len(NAMES)
