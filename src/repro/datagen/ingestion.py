"""The ``ingestion`` scenario family: messy real-CSV feeds, normalized.

Real deployments rarely hand the matcher the tidy typed relations the
other generator families produce — they hand it a CSV export with renamed
headers, currency-formatted prices, unit-suffixed quantities, prefixed
record keys and pluralized product vocabulary.  This module reproduces
that shape (modelled on the retail/warehouse ingestion pipelines in
SNIPPETS.md §3) as a first-class scenario family:

* :func:`make_messy_feed` renders the retail ``items`` table into a raw
  ``RetailFeed`` export — every column a string, headers per
  :data:`FEED_HEADERS`, values messied per column kind;
* the ``normalize`` helpers invert the mess deterministically:
  :func:`normalize_header` (rename maps), :func:`parse_currency` /
  :func:`parse_quantity` / :func:`parse_sku` (unit/format drift) and
  :func:`singularize` (explicit plural overrides + guarded suffix strip);
* the registered ``ingestion`` family builds the base retail workload,
  renders the messy feed, round-trips it through the CSV codec (the
  streaming reader parses it back, exactly as ``repro match`` over a
  dumped directory would) and matches the *normalized* source against the
  untouched retail target — so the golden baselines pin the whole
  ingest-normalize-match path, and the standard perturbation variants
  (``-nulls``/``-drift``/``-scrambled``) compose on top as for every
  other family.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

import numpy as np

from ..errors import ReproError
from ..relational.csvio import relation_from_csv_text, relation_to_csv_text
from ..relational.instance import Database, Relation
from .inventory import make_retail_workload
from .perturb import Workload
from .registry import (DEFAULT_PERTURBATION_VARIANTS, ScenarioSpec,
                       register_family, register_scenario)

__all__ = ["FEED_HEADERS", "PLURAL_MAP", "NO_STRIP_WORDS", "TAG_VOCABULARY",
           "singularize", "normalize_header", "parse_currency",
           "parse_quantity", "parse_sku", "normalize_product_name",
           "make_messy_feed", "normalize_feed", "make_ingestion_workload"]

#: Feed-export header per clean ``items`` attribute (the rename map an
#: ingestion pipeline maintains by hand; inverted by `normalize_header`).
FEED_HEADERS: dict[str, str] = {
    "ItemID": "Item_ID",
    "Name": "Product_Name",
    "Creator": "Maker",
    "ItemType": "Item_Type",
    "StockStatus": "Stock_Status",
    "Code": "Product_Code",
    "ListPrice": "Unit_Price",
    "Qty": "Qty_On_Hand",
}

#: Explicit plural -> singular overrides for vocabulary where suffix
#: stripping is wrong ("POTATOES" -> "POTATO", not "POTATOE").
PLURAL_MAP: dict[str, str] = {
    "POTATOES": "POTATO",
    "TOMATOES": "TOMATO",
    "BLUEBERRIES": "BLUEBERRY",
    "STRAWBERRIES": "STRAWBERRY",
    "ANCHOVIES": "ANCHOVY",
    "LEAVES": "LEAF",
}

#: Singular words that happen to end in ``S``-like suffixes and must not
#: be stripped.
NO_STRIP_WORDS: frozenset[str] = frozenset({
    "CHEESE", "RICE", "SAUCE", "JUICE", "LETTUCE", "PRODUCE",
    "ASPARAGUS", "CITRUS", "COUSCOUS", "HUMMUS", "MOLASSES",
})

#: The messy feed's per-row product tag vocabulary: plural forms mixing
#: explicit-override words, guarded no-strip words and regular plurals.
TAG_VOCABULARY: tuple[str, ...] = (
    "ONIONS", "CARROTS", "POTATOES", "TOMATOES", "EGGS", "MUSHROOMS",
    "STRAWBERRIES", "GRAPES", "APPLES", "BANANAS", "CHIPS", "PICKLES",
    "CHEESE", "RICE", "SAUCE", "JUICE", "LETTUCE", "ASPARAGUS",
)


def singularize(word: str) -> str:
    """Singular form of an uppercase vocabulary word.

    Explicit overrides first, then the no-strip guard, then the generic
    suffix rules (``IES`` -> ``Y``, trailing ``S`` stripped unless the
    word ends in ``SS``).
    """
    mapped = PLURAL_MAP.get(word)
    if mapped is not None:
        return mapped
    if word in NO_STRIP_WORDS:
        return word
    if word.endswith("IES") and len(word) > 3:
        return word[:-3] + "Y"
    if word.endswith("S") and not word.endswith("SS"):
        return word[:-1]
    return word


def normalize_header(header: str,
                     rename: Mapping[str, str] | None = None) -> str:
    """Spec-side attribute name for a feed header.

    *rename* maps feed headers to spec names (the inverse of
    :data:`FEED_HEADERS` by default); unknown headers fall back to the
    header itself with underscores collapsed away.
    """
    if rename is None:
        rename = {feed: clean for clean, feed in FEED_HEADERS.items()}
    mapped = rename.get(header)
    if mapped is not None:
        return mapped
    return "".join(part.capitalize() for part in header.split("_"))


def parse_currency(text: Any) -> float | None:
    """``"$12.34"`` -> ``12.34``; None and blanks stay missing."""
    if text is None:
        return None
    cleaned = str(text).strip().lstrip("$").replace(",", "")
    if not cleaned:
        return None
    return float(cleaned)


def parse_quantity(text: Any) -> int | None:
    """``"7 pcs"`` -> ``7``; None and blanks stay missing."""
    if text is None:
        return None
    digits = "".join(ch for ch in str(text) if ch.isdigit() or ch == "-")
    if not digits or digits == "-":
        return None
    return int(digits)


def parse_sku(text: Any) -> int | None:
    """``"SKU-000123"`` -> ``123``; None and blanks stay missing."""
    if text is None:
        return None
    digits = "".join(ch for ch in str(text) if ch.isdigit())
    if not digits:
        return None
    return int(digits)


def normalize_product_name(text: Any) -> Any:
    """``"THE_SILENT_GARDEN"`` -> ``"the silent garden"``."""
    if text is None:
        return None
    return str(text).replace("_", " ").lower()


def make_messy_feed(items: Relation, *, seed: int = 0,
                    name: str = "RetailFeed") -> Relation:
    """Render the clean ``items`` table as a raw CSV-export feed.

    Every column becomes a string in the export's house style: prefixed
    zero-padded SKUs, upper-snake product names, ``$``-formatted prices,
    ``pcs``-suffixed quantities — plus a ``Product_Tag`` column of plural
    vocabulary words that only normalization makes comparable.  Missing
    values render as blanks, exactly as :func:`write_csv` emits them.
    """
    rng = np.random.default_rng([seed, 0x1EED])
    n = len(items)
    tags = [TAG_VOCABULARY[int(i)]
            for i in rng.integers(0, len(TAG_VOCABULARY), size=n)]

    def messy(attr: str, render) -> list:
        return [None if value is None else render(value)
                for value in items.column(attr)]

    columns: dict[str, list] = {
        FEED_HEADERS["ItemID"]: messy("ItemID", lambda v: f"SKU-{v:06d}"),
        FEED_HEADERS["Name"]: messy(
            "Name", lambda v: str(v).upper().replace(" ", "_")),
        FEED_HEADERS["Creator"]: messy("Creator", str),
        FEED_HEADERS["ItemType"]: messy("ItemType", str),
        FEED_HEADERS["StockStatus"]: messy("StockStatus", str),
        FEED_HEADERS["Code"]: messy("Code", str),
        FEED_HEADERS["ListPrice"]: messy("ListPrice", lambda v: f"${v:.2f}"),
        FEED_HEADERS["Qty"]: messy("Qty", lambda v: f"{v} pcs"),
        "Product_Tag": tags,
    }
    return Relation.infer_schema(name, columns)


def normalize_feed(feed: Relation, *, name: str = "items") -> Relation:
    """Invert :func:`make_messy_feed`: renamed headers, parsed values.

    The output carries the clean ``items`` attribute names (plus ``Tag``
    for the feed's ``Product_Tag``), typed by schema inference over the
    parsed values — the relation an ingestion pipeline would hand the
    match engine.
    """
    parsers = {
        "ItemID": parse_sku,
        "Name": normalize_product_name,
        "ListPrice": parse_currency,
        "Qty": parse_quantity,
    }
    columns: dict[str, list] = {}
    for header in feed.schema.attribute_names:
        if header == "Product_Tag":
            columns["Tag"] = [
                None if value is None else singularize(str(value))
                for value in feed.column(header)
            ]
            continue
        attr = normalize_header(header)
        parse = parsers.get(attr)
        values = feed.column(header)
        if parse is None:
            columns[attr] = list(values)
        else:
            columns[attr] = [parse(value) for value in values]
    return Relation.infer_schema(name, columns)


def make_ingestion_workload(target: str = "ryan", *, n_source: int = 1000,
                            n_target: int = 400, gamma: int = 4,
                            seed: int = 0) -> Workload:
    """The retail workload arriving as a messy CSV feed.

    The source side is rendered messy, round-tripped through the CSV
    codec (string-typed, exactly what ``load_database`` would read from a
    dumped directory) and normalized back; the target database and ground
    truth are the base retail ones, so every correspondence the engine
    must find survives ingestion rather than being handed over typed.
    """
    base = make_retail_workload(target=target, n_source=n_source,
                                n_target=n_target, gamma=gamma, seed=seed)
    feed = make_messy_feed(base.source.relation(base.source_table),
                           seed=seed)
    parsed = relation_from_csv_text(relation_to_csv_text(feed), feed.name)
    clean = normalize_feed(parsed)
    source = Database.from_relations("ingestion_src", [clean])
    return Workload(source=source, target=base.target,
                    ground_truth=base.ground_truth)


@register_family("ingestion")
def _build_ingestion(spec: ScenarioSpec) -> Workload:
    if spec.gamma < 2 or spec.gamma % 2 != 0:
        raise ReproError(f"gamma must be even and >= 2, got {spec.gamma}")
    return make_ingestion_workload(
        target=spec.knob("target", "ryan"), n_source=spec.size,
        n_target=int(spec.knob("n_target", max(spec.size // 2, 20))),
        gamma=spec.gamma, seed=spec.seed)


_INGESTION_BASE = ScenarioSpec(
    name="ingestion", family="ingestion", seed=13, size=260, gamma=2,
    config=(("inference", "src"),))
register_scenario(_INGESTION_BASE)
for _variant, _perturbations in DEFAULT_PERTURBATION_VARIANTS.items():
    register_scenario(dataclasses.replace(
        _INGESTION_BASE, name=f"ingestion-{_variant}",
        perturbations=_perturbations))
del _variant, _perturbations
