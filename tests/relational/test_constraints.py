"""Unit tests for keys, foreign keys and contextual foreign keys."""

import pytest

from repro.errors import ConstraintError
from repro.relational import (ContextualForeignKey, Eq, ForeignKey, Key,
                              Relation, View)


@pytest.fixture()
def project_relation() -> Relation:
    """The project table of paper Example 4.1."""
    return Relation.infer_schema("project", {
        "name": ["ann", "ann", "bob", "bob", "cat"],
        "assignt": [0, 1, 0, 1, 0],
        "grade": ["A", "B", "B", "A", "C"],
        "instructor": ["kim", "kim", "lee", "kim", "lee"],
    })


@pytest.fixture()
def student_relation() -> Relation:
    return Relation.infer_schema("student", {
        "name": ["ann", "bob", "cat"],
        "email": ["a@x", "b@x", "c@x"],
        "address": ["1 st", "2 st", "3 st"],
    })


class TestKey:
    def test_composite_key_holds(self, project_relation):
        assert Key("project", ("name", "assignt")).holds_on(project_relation)

    def test_single_attribute_not_key(self, project_relation):
        assert not Key("project", ("name",)).holds_on(project_relation)

    def test_key_on_unique_column(self, student_relation):
        assert Key("student", ("name",)).holds_on(student_relation)

    def test_nulls_do_not_violate(self):
        relation = Relation.infer_schema("t", {"a": [1, None, None]})
        assert Key("t", ("a",)).holds_on(relation)

    def test_empty_attributes_rejected(self):
        with pytest.raises(ConstraintError):
            Key("t", ())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(ConstraintError):
            Key("t", ("a", "a"))

    def test_str(self):
        assert str(Key("t", ("a", "b"))) == "t[a, b] -> t"


class TestForeignKey:
    def test_holds(self, project_relation, student_relation):
        fk = ForeignKey("project", ("name",), "student", ("name",))
        assert fk.holds_on(project_relation, student_relation)

    def test_violation_detected(self, student_relation):
        orphan = Relation.infer_schema("project", {"name": ["zoe"]})
        fk = ForeignKey("project", ("name",), "student", ("name",))
        assert not fk.holds_on(orphan, student_relation)

    def test_null_child_values_ignored(self, student_relation):
        child = Relation.infer_schema("project", {"name": ["ann", None]})
        fk = ForeignKey("project", ("name",), "student", ("name",))
        assert fk.holds_on(child, student_relation)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            ForeignKey("a", ("x",), "b", ("y", "z"))

    def test_referenced_key(self):
        fk = ForeignKey("a", ("x",), "b", ("y",))
        assert fk.referenced_key == Key("b", ("y",))


class TestContextualForeignKey:
    def make_view_instance(self, project_relation, assignt):
        view = View("project", Eq("assignt", assignt),
                    projection=("name", "grade"))
        return view.evaluate(project_relation)

    def test_example_41_holds(self, project_relation):
        """Vi[name, assignt = i] ⊆ project[name, assignt] (Example 4.1)."""
        for assignt in (0, 1):
            cfk = ContextualForeignKey(
                view=f"project[assignt={assignt}]",
                view_attributes=("name",),
                context_attribute="assignt", context_value=assignt,
                parent="project", parent_attributes=("name",),
                parent_context_attribute="assignt")
            instance = self.make_view_instance(project_relation, assignt)
            renamed = instance.rename(cfk.view)
            assert cfk.holds_on(renamed, project_relation)

    def test_wrong_context_value_fails(self, project_relation):
        cfk = ContextualForeignKey(
            view="v", view_attributes=("name",),
            context_attribute="assignt", context_value=9,
            parent="project", parent_attributes=("name",),
            parent_context_attribute="assignt")
        instance = self.make_view_instance(project_relation, 0).rename("v")
        assert not cfk.holds_on(instance, project_relation)

    def test_referenced_key_includes_context(self):
        cfk = ContextualForeignKey(
            view="v", view_attributes=("name",),
            context_attribute="a", context_value=1,
            parent="r", parent_attributes=("name",),
            parent_context_attribute="a")
        assert cfk.referenced_key == Key("r", ("name", "a"))

    def test_shadow_foreign_key(self):
        cfk = ContextualForeignKey(
            view="v", view_attributes=("name",),
            context_attribute="a", context_value=1,
            parent="r", parent_attributes=("name",),
            parent_context_attribute="a")
        assert cfk.to_foreign_key_like() == ForeignKey(
            "v", ("name",), "r", ("name",))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ConstraintError):
            ContextualForeignKey(
                view="v", view_attributes=("x", "y"),
                context_attribute="a", context_value=1,
                parent="r", parent_attributes=("x",),
                parent_context_attribute="a")

    def test_str_mentions_context(self):
        cfk = ContextualForeignKey(
            view="v", view_attributes=("name",),
            context_attribute="assignt", context_value=3,
            parent="project", parent_attributes=("name",),
            parent_context_attribute="assignt")
        assert "assignt = 3" in str(cfk)
