"""PartitionIndex: partition-once materialization of family member views."""

import pytest

from repro.profiling import PartitionIndex
from repro.relational import Eq, In, Relation, View


@pytest.fixture()
def relation() -> Relation:
    return Relation.infer_schema("t", {
        "kind": ["a", "b", None, "a", "c", "b", "a"],
        "payload": [10, 20, 30, 40, 50, 60, 70],
    })


class TestPartitionIndices:
    def test_cells_in_row_order(self, relation):
        cells = relation.partition_indices("kind")
        assert cells == {"a": [0, 3, 6], "b": [1, 5], "c": [4]}

    def test_missing_values_fall_in_no_cell(self, relation):
        cells = relation.partition_indices("kind")
        assert all(2 not in ix for ix in cells.values())

    def test_unhashable_values_skipped(self):
        rel = Relation.infer_schema("t", {"k": [["x"], "a", "a"],
                                          "v": [1, 2, 3]})
        assert rel.partition_indices("k") == {"a": [1, 2]}

    def test_unknown_attribute_raises(self, relation):
        from repro.errors import SchemaError
        with pytest.raises(SchemaError):
            relation.partition_indices("nope")


class TestPartitionIndex:
    def test_singleton_group_matches_view_evaluate(self, relation):
        index = PartitionIndex(relation, "kind")
        view = View("t", Eq("kind", "a"))
        restricted = view.evaluate(relation)
        group = frozenset({"a"})
        assert index.group_size(group) == len(restricted)
        assert (index.restricted_column("payload", group)
                == restricted.column("payload"))

    def test_merged_group_preserves_base_row_order(self, relation):
        index = PartitionIndex(relation, "kind")
        view = View("t", In("kind", ["a", "c"]))
        restricted = view.evaluate(relation)
        group = frozenset({"a", "c"})
        assert index.group_rows(group) == (0, 3, 4, 6)
        assert (index.restricted_column("payload", group)
                == restricted.column("payload"))

    def test_absent_group_values_are_empty(self, relation):
        index = PartitionIndex(relation, "kind")
        assert index.group_size(frozenset({"zzz"})) == 0
        assert index.restricted_column("payload", frozenset({"zzz"})) == []

    def test_group_rows_memoized(self, relation):
        index = PartitionIndex(relation, "kind")
        first = index.group_rows(frozenset({"a", "b"}))
        assert index.group_rows({"a", "b"}) is first

    def test_partition_also_restricts_the_partition_attribute(self, relation):
        index = PartitionIndex(relation, "kind")
        assert index.restricted_column("kind", frozenset({"b"})) == ["b", "b"]
