"""Unit tests for score normalization and evidence combination."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mathutil import mean_std, phi, phi_inverse_threshold
from repro.matching import (MatcherEvidence, combine_evidence,
                            confidences_from_scores)


class TestPhi:
    def test_symmetry(self):
        assert phi(0.0) == pytest.approx(0.5)
        assert phi(1.0) + phi(-1.0) == pytest.approx(1.0)

    def test_known_value(self):
        assert phi(1.96) == pytest.approx(0.975, abs=1e-3)

    def test_inverse(self):
        assert phi(phi_inverse_threshold(0.95)) == pytest.approx(0.95,
                                                                 abs=1e-6)

    def test_inverse_rejects_bad_p(self):
        with pytest.raises(ValueError):
            phi_inverse_threshold(1.0)

    @given(st.floats(-8, 8))
    def test_monotone(self, z):
        assert phi(z) <= phi(z + 0.1)


class TestMeanStd:
    def test_empty(self):
        assert mean_std([]) == (0.0, 0.0)

    def test_constant(self):
        mean, std = mean_std([2.0, 2.0])
        assert mean == 2.0 and std == 0.0

    def test_known(self):
        mean, std = mean_std([1.0, 3.0])
        assert mean == 2.0 and std == 1.0


class TestConfidences:
    def test_above_mean_above_half(self):
        confs = confidences_from_scores([0.1, 0.2, 0.9])
        assert confs[2] > 0.5 > confs[0]

    def test_abstentions_preserved(self):
        confs = confidences_from_scores([0.1, None, 0.9])
        assert confs[1] is None
        assert confs[0] is not None

    def test_degenerate_all_equal(self):
        assert confidences_from_scores([0.4, 0.4, 0.4]) == [0.5, 0.5, 0.5]

    def test_single_score_is_half(self):
        assert confidences_from_scores([0.7]) == [0.5]

    def test_empty(self):
        assert confidences_from_scores([]) == []

    @given(st.lists(st.floats(0, 1), min_size=2, max_size=20))
    def test_bounds(self, scores):
        for conf in confidences_from_scores(scores):
            assert conf is None or 0.0 <= conf <= 1.0

    @given(st.lists(st.floats(0, 1), min_size=3, max_size=20))
    def test_order_preserved(self, scores):
        confs = confidences_from_scores(scores)
        pairs = sorted(zip(scores, confs))
        for (s1, c1), (s2, c2) in zip(pairs, pairs[1:]):
            if s1 < s2:
                assert c1 <= c2


class TestCombiner:
    def evidence(self, weight, raw, conf, name="m"):
        return MatcherEvidence(matcher=name, weight=weight, raw_score=raw,
                               confidence=conf)

    def test_empty_returns_none(self):
        assert combine_evidence([]) is None

    def test_single(self):
        combined = combine_evidence([self.evidence(1.0, 0.6, 0.8)])
        assert combined.score == 0.6
        assert combined.confidence == 0.8

    def test_weighted_mean(self):
        combined = combine_evidence([
            self.evidence(1.0, 0.0, 0.0), self.evidence(3.0, 1.0, 1.0)])
        assert combined.score == pytest.approx(0.75)
        assert combined.confidence == pytest.approx(0.75)

    def test_zero_total_weight(self):
        assert combine_evidence([self.evidence(0.0, 0.5, 0.5)]) is None

    def test_evidence_carried(self):
        items = [self.evidence(1.0, 0.5, 0.5, "a"),
                 self.evidence(1.0, 0.7, 0.6, "b")]
        combined = combine_evidence(items)
        assert [e.matcher for e in combined.evidence] == ["a", "b"]
