"""Select-only views and view families (paper Sections 3, 3.2.2).

A :class:`View` is ``select <projection> from <base> where <condition>``.
Views are evaluated lazily against the in-memory sample — they are *never*
materialized in a DBMS during the candidate search (Section 3, "views are
not created in the DBMS storing RS or RT").

A :class:`ViewFamily` ``F = (R, l, {Vi})`` partitions a table by the values
of one categorical attribute ``l`` — the unit of quality assessment in
Algorithm ClusteredViewGen (Figure 6).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Iterator, Sequence

from ..errors import ConditionError, SchemaError
from .conditions import Condition, Eq, In, TRUE
from .instance import Relation
from .schema import TableSchema

__all__ = ["View", "ViewFamily", "view_name"]


def view_name(base: str, condition: Condition) -> str:
    """A deterministic, human-readable name for an inferred view."""
    if condition.is_true():
        return base
    text = str(condition)
    for old, new in ((" ", ""), ("'", ""), ('"', ""), ("{", "("), ("}", ")")):
        text = text.replace(old, new)
    return f"{base}[{text}]"


@dataclasses.dataclass(frozen=True)
class View:
    """A select-only view over a base table.

    Parameters
    ----------
    base:
        Name of the base table (or of another view, for the conjunctive
        iteration of Section 3.5).
    condition:
        Selection condition; ``TRUE`` makes the view the identity.
    projection:
        Optional tuple of attribute names to keep (``select *`` when None) —
        SP views as used by the mapping layer in Section 4.
    name:
        Optional explicit name; defaults to :func:`view_name`.
    """

    base: str
    condition: Condition = TRUE
    projection: tuple[str, ...] | None = None
    name: str = ""

    def __post_init__(self) -> None:
        if not self.base:
            raise SchemaError("view needs a base table name")
        if not self.name:
            object.__setattr__(self, "name", view_name(self.base, self.condition))

    # ------------------------------------------------------------------
    def schema(self, base_schema: TableSchema) -> TableSchema:
        """The schema of this view given its base table's schema."""
        names = self.projection or base_schema.attribute_names
        return base_schema.project(names, new_name=self.name, is_view=True)

    def evaluate(self, base: Relation) -> Relation:
        """Materialize the view over an in-memory sample of its base."""
        if base.name != self.base:
            raise SchemaError(
                f"view {self.name!r} is over {self.base!r}, got instance of "
                f"{base.name!r}"
            )
        selected = base.select(self.condition.evaluate, name=self.name,
                               is_view=True)
        if self.projection is not None:
            selected = selected.project(list(self.projection), name=self.name,
                                        is_view=True)
        return selected

    def to_sql(self) -> str:
        cols = ", ".join(self.projection) if self.projection else "*"
        if self.condition.is_true():
            return f"SELECT {cols} FROM {self.base}"
        return f"SELECT {cols} FROM {self.base} WHERE {self.condition.to_sql()}"

    def restrict(self, extra: Condition) -> "View":
        """This view further restricted by *extra* (conjunctive search)."""
        return View(self.base, self.condition.and_(extra),
                    projection=self.projection)

    @property
    def is_identity(self) -> bool:
        return self.condition.is_true() and self.projection is None

    def __str__(self) -> str:
        return f"{self.name} = ({self.to_sql()})"


class ViewFamily:
    """A family ``F = (R, l, {Vi})`` of mutually exclusive select-only views
    partitioning table ``R`` by values of a single attribute ``l``.

    ``groups`` gives the value-sets of the partition: a plain family has one
    singleton group per categorical value; early-disjunct merging (Section
    3.3) produces multi-value groups.
    """

    def __init__(self, table: str, attribute: str,
                 groups: Iterable[Sequence[Any]], *, quality: float = 0.0):
        self.table = table
        self.attribute = attribute
        self.quality = quality
        normalized: list[frozenset[Any]] = []
        seen: set[Any] = set()
        for group in groups:
            fs = frozenset(group)
            if not fs:
                raise ConditionError("view family group must be non-empty")
            if fs & seen:
                raise ConditionError(
                    f"view family groups on {table}.{attribute} overlap: {fs}"
                )
            seen |= fs
            normalized.append(fs)
        if not normalized:
            raise ConditionError("view family needs at least one group")
        self.groups: tuple[frozenset[Any], ...] = tuple(normalized)

    @classmethod
    def simple(cls, table: str, attribute: str, values: Iterable[Any],
               *, quality: float = 0.0) -> "ViewFamily":
        """One view per distinct value — the un-merged family."""
        return cls(table, attribute, [[v] for v in values], quality=quality)

    def condition_for(self, group: frozenset[Any]) -> Condition:
        if len(group) == 1:
            return Eq(self.attribute, next(iter(group)))
        return In(self.attribute, sorted(group, key=repr))

    def views(self) -> list[View]:
        """The member views ``{Vi}``, one per group."""
        return [View(self.table, self.condition_for(g)) for g in self.groups]

    def __iter__(self) -> Iterator[View]:
        return iter(self.views())

    def __len__(self) -> int:
        return len(self.groups)

    def merge(self, value_a: Any, value_b: Any) -> "ViewFamily":
        """A new family with the groups containing *value_a* and *value_b*
        merged — one step of the early-disjunct algorithm (Section 3.3)."""
        group_a = self._group_of(value_a)
        group_b = self._group_of(value_b)
        if group_a == group_b:
            return self
        merged = group_a | group_b
        rest = [g for g in self.groups if g not in (group_a, group_b)]
        return ViewFamily(self.table, self.attribute, [merged, *rest],
                          quality=self.quality)

    def _group_of(self, value: Any) -> frozenset[Any]:
        for group in self.groups:
            if value in group:
                return group
        raise ConditionError(
            f"value {value!r} not in any group of family on "
            f"{self.table}.{self.attribute}"
        )

    def group_label(self, value: Any) -> frozenset[Any]:
        """The merged token (group) a raw categorical value belongs to."""
        return self._group_of(value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ViewFamily):
            return NotImplemented
        return (self.table, self.attribute, frozenset(self.groups)) == (
            other.table, other.attribute, frozenset(other.groups))

    def __hash__(self) -> int:
        return hash((self.table, self.attribute, frozenset(self.groups)))

    def __repr__(self) -> str:
        parts = ["{" + ",".join(sorted(map(repr, g))) + "}" for g in self.groups]
        return (f"<ViewFamily {self.table}.{self.attribute} -> "
                f"{' | '.join(parts)} (q={self.quality:.3f})>")
