"""repro — contextual schema matching.

A from-scratch reproduction of Bohannon, Elnahrawy, Fan & Flaster,
*Putting Context into Schema Matching* (VLDB 2006).

The library provides:

* a relational substrate (:mod:`repro.relational`) — schemas, in-memory
  instances, selection conditions, select-only views, and (contextual)
  key / foreign-key constraints;
* a multi-matcher instance-based standard schema matcher
  (:mod:`repro.matching`);
* the contextual matching framework (:mod:`repro.context` +
  :mod:`repro.engine`) — the paper's core contribution: the five-stage
  ContextMatch pipeline (Figure 5) with the ``NaiveInfer`` /
  ``SrcClassInfer`` / ``TgtClassInfer`` candidate-view generators, early /
  late disjunct handling and ``MultiTable`` / ``QualTable`` selection;
* a relational Clio-style schema mapping generator extended with contextual
  foreign keys, constraint-propagation rules and the join 1/2/3 association
  rules (:mod:`repro.mapping`);
* workload generators and the full experimental harness reproducing every
  figure of the paper's evaluation (:mod:`repro.datagen`,
  :mod:`repro.evaluation`).

Quickstart — the engine API.  :meth:`MatchEngine.prepare` profiles a
target schema once; ``match`` / ``match_many`` then run the pipeline for
any number of sources without re-indexing, and every result carries a
per-stage :class:`RunReport`::

    from repro import MatchEngine, ContextMatchConfig
    from repro.datagen import make_retail_workload

    workload = make_retail_workload(target="ryan", seed=7)
    engine = MatchEngine(ContextMatchConfig())
    prepared = engine.prepare(workload.target)

    result = engine.match(workload.source, prepared)
    for match in result.matches:
        print(match)
    print(result.report)            # per-stage timings + counts

    # Batch mode: the target index is built exactly once.
    results = engine.match_many([workload.source], prepared)

    # Source-side reuse: profiles/partitions persist across runs.
    prepared_src = engine.prepare_source(workload.source)
    result = engine.match(prepared_src, prepared)

    # Scale out: fan the batch across worker processes (bit-identical).
    from repro import ExecutorConfig, MatchExecutor
    with MatchExecutor(ExecutorConfig(backend="process",
                                      max_workers=4)) as executor:
        batch = executor.match_many(engine, [workload.source], prepared)
    print(batch.throughput)     # tasks, workers, wall, per-task elapsed

    # Persist the prepared target and serve it (see `repro serve`):
    from repro import ArtifactStore, MatchService
    store = ArtifactStore("artifacts/")
    token = store.save(prepared, engine=engine).token
    with MatchService(store) as service:
        result, _ = service.match(workload.source, token)

    # Route one source across every stored hub, ranked best-first
    # (see `repro match-repo` and `POST /match-repository`):
    from repro import TargetRepository
    repo = TargetRepository.from_store(store, engine)
    routed = repo.match_one(workload.source)
    print(routed)               # source -> best hub (score) [K hubs]

The pre-engine entry point is kept as a thin backward-compatible facade:
``ContextMatch(config).run(source, target)`` is exactly
``MatchEngine(config).match(source, target)``.
"""

from .context import (ContextMatch, ContextMatchConfig, ContextualMatch,
                      MatchResult)
from .engine import (BatchResult, EngineObserver, ExecutorConfig,
                     MatchEngine, MatchExecutor, PreparedSource,
                     PreparedTarget, RunReport, Stage, StageReport,
                     ThroughputReport, default_stages)
from .matching import MatchingSystem, StandardMatch, StandardMatchConfig
from .profiling import ColumnProfile, PartitionIndex, ProfileStore
from .relational import (Attribute, Condition, Database, DataType, Eq, In,
                         Relation, Schema, TableSchema, View, ViewFamily)
from .repository import HubScore, RepositoryResult, TargetRepository
from .retrieval import RetrievalIndex
from .service import MatchService, ServiceReport, start_service
from .store import ArtifactStore, StoreEntry

from ._version import __version__

__all__ = [
    "MatchEngine",
    "PreparedTarget",
    "PreparedSource",
    "MatchExecutor",
    "ExecutorConfig",
    "BatchResult",
    "ThroughputReport",
    "ProfileStore",
    "ColumnProfile",
    "PartitionIndex",
    "RunReport",
    "StageReport",
    "Stage",
    "default_stages",
    "EngineObserver",
    "ContextMatch",
    "ContextMatchConfig",
    "ContextualMatch",
    "MatchResult",
    "StandardMatch",
    "StandardMatchConfig",
    "MatchingSystem",
    "Attribute",
    "Condition",
    "Database",
    "DataType",
    "Eq",
    "In",
    "Relation",
    "Schema",
    "TableSchema",
    "View",
    "ViewFamily",
    "RetrievalIndex",
    "TargetRepository",
    "RepositoryResult",
    "HubScore",
    "ArtifactStore",
    "StoreEntry",
    "MatchService",
    "ServiceReport",
    "start_service",
    "__version__",
]
