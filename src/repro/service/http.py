"""The ``repro serve`` HTTP loop: JSON over stdlib ``ThreadingHTTPServer``.

Dependency-free by design — the service speaks plain JSON over HTTP/1.1
with nothing beyond the standard library, so any client (``curl``, a
notebook, another repro process) can submit match requests.  Each
request runs on its own server thread against the shared
:class:`~repro.service.core.MatchService`; the service's warm LRU and
lock discipline make that safe (see its module docstring).

Routes
------
``GET  /health``      liveness + version + store path
``GET  /targets``     stored hub targets with warm/runs state
``GET  /report``      full :class:`~repro.service.report.ServiceReport`
``POST /match``       ``{"target": <token-or-name>, "source": <database>}``
``POST /match-many``  ``{"target": ..., "sources": [<database>, ...]}``
``POST /match-repository``  ``{"source": <database>[, "targets": [...]]}``
— route one source against every stored hub (or just ``targets``),
ranked best-first with the winning hub's full result attached.

Database payloads use :func:`repro.relational.jsonio.database_to_dict`'s
shape; match results come back as
:func:`repro.context.serialize.result_to_dict`.  Because the wire codecs
preserve schemas exactly and stored artifacts restore bit-identically, a
served match equals the same match run in process — byte for byte.

Errors map to JSON bodies ``{"error": ..., "type": ...}``: unknown
targets are 404, malformed payloads 400, library faults 500.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from .._version import __version__
from ..context.serialize import result_to_dict, throughput_to_dict
from ..errors import (ArtifactNotFoundError, InstanceError, ReproError,
                      StoreError)
from .core import MatchService

__all__ = ["MatchServer", "MatchRequestHandler", "start_service"]

#: Largest accepted request body (64 MiB) — a guard, not a quota.
_MAX_BODY = 64 * 1024 * 1024


class MatchRequestHandler(BaseHTTPRequestHandler):
    """One request against the server's shared :class:`MatchService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-serve/{__version__}"

    # The serve loop is quiet by default; latency lives in /report.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.server.verbose:  # type: ignore[attr-defined]
            super().log_message(format, *args)

    @property
    def service(self) -> MatchService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def _send_json(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        if length > _MAX_BODY:
            raise ValueError(f"request body too large ({length} bytes)")
        # A socket read may return fewer bytes than asked for (slow or
        # chunky clients); loop until the declared length is consumed.
        chunks: list[bytes] = []
        remaining = length
        while remaining > 0:
            chunk = self.rfile.read(remaining)
            if not chunk:
                raise ValueError(
                    f"premature end of request body: got "
                    f"{length - remaining} of {length} declared bytes")
            chunks.append(chunk)
            remaining -= len(chunk)
        data = json.loads(b"".join(chunks).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    def _handle(self, endpoint: str, fn) -> None:
        """Run one handler, timing it and mapping errors to statuses."""
        started = time.perf_counter()
        error = False
        try:
            status, payload = fn()
        except ArtifactNotFoundError as exc:
            error, (status, payload) = True, self._fault(404, exc)
        except InstanceError as exc:
            # A payload that doesn't decode into a database is the
            # client's fault.
            error, (status, payload) = True, self._fault(400, exc)
        except (StoreError, ReproError) as exc:
            # Store damage and engine faults are server-side problems.
            error, (status, payload) = True, self._fault(500, exc)
        except (ValueError, KeyError, TypeError, json.JSONDecodeError) as exc:
            error, (status, payload) = True, self._fault(400, exc)
        except Exception as exc:  # noqa: BLE001 - the contract: every
            # request gets a JSON response and is observed, even when a
            # handler raises outside the enumerated set (an
            # AttributeError deep in a stage must not drop the
            # connection bodiless and slip past the error counter).
            error, (status, payload) = True, self._fault(500, exc)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.service.observe(endpoint, elapsed_ms, error=error)
        if isinstance(payload, dict):
            payload.setdefault("elapsed_ms", elapsed_ms)
        self._send_json(status, payload)

    @staticmethod
    def _fault(status: int, exc: Exception) -> tuple[int, dict[str, Any]]:
        return status, {"error": str(exc), "type": type(exc).__name__}

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server convention)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path in ("/", "/health"):
            self._handle("health", lambda: (200, {
                "status": "ok", "__version__": __version__,
                "store": str(self.service.store.root)}))
        elif path == "/targets":
            self._handle("targets", lambda: (200, {
                "targets": self.service.target_entries()}))
        elif path == "/report":
            self._handle("report", lambda: (
                200, self.service.report().to_dict()))
        else:
            self._send_json(404, {"error": f"no route {path!r}",
                                  "type": "NotFound"})

    def do_POST(self) -> None:  # noqa: N802
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/match":
            self._handle("match", self._do_match)
        elif path == "/match-many":
            self._handle("match-many", self._do_match_many)
        elif path == "/match-repository":
            self._handle("match-repository", self._do_match_repository)
        else:
            self._send_json(404, {"error": f"no route {path!r}",
                                  "type": "NotFound"})

    def _do_match(self) -> tuple[int, dict[str, Any]]:
        body = self._read_body()
        result, token = self.service.match(body["source"], body["target"])
        return 200, {"target": token, "result": result_to_dict(result)}

    def _do_match_many(self) -> tuple[int, dict[str, Any]]:
        body = self._read_body()
        sources = body["sources"]
        if not isinstance(sources, list) or not sources:
            raise ValueError("'sources' must be a non-empty list")
        batch, token = self.service.match_many(sources, body["target"])
        return 200, {
            "target": token,
            "results": [result_to_dict(r) for r in batch.results],
            "throughput": throughput_to_dict(batch.throughput)}

    def _do_match_repository(self) -> tuple[int, dict[str, Any]]:
        from ..repository.serialize import repository_result_to_dict

        body = self._read_body()
        targets = body.get("targets")
        if targets is not None and (not isinstance(targets, list)
                                    or not targets):
            raise ValueError("'targets' must be a non-empty list when given")
        routed, tokens = self.service.match_repository(body["source"],
                                                       targets)
        return 200, {"targets": tokens,
                     **repository_result_to_dict(routed, results="best")}


class MatchServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one :class:`MatchService`.

    Request threads are daemonic so a hung client cannot block shutdown;
    the service itself is shared, thread-safe state.
    """

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: MatchService,
                 *, verbose: bool = False):
        super().__init__(address, MatchRequestHandler)
        self.service = service
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    def server_close(self) -> None:
        super().server_close()
        self.service.close()


def start_service(service: MatchService, *, host: str = "127.0.0.1",
                  port: int = 0, verbose: bool = False) -> MatchServer:
    """Bind a :class:`MatchServer` and serve it on a background thread.

    ``port=0`` binds an ephemeral port — read it back from
    ``server.port``.  The caller owns shutdown::

        server = start_service(service)
        try:
            ...  # requests against http://127.0.0.1:{server.port}
        finally:
            server.shutdown(); server.server_close()
    """
    import threading

    server = MatchServer((host, port), service, verbose=verbose)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve", daemon=True)
    thread.start()
    return server
