"""``ClioQualTable`` — contextual matching plus mapping generation
(paper Section 5.7).

The attribute-normalization experiments run QualTable-selected contextual
matching and hand its output straight to the extended Clio machinery: with
the join 1 rule, the per-exam views of the Grades data set join on the key
``name`` and a single logical table maps onto the wide target.
"""

from __future__ import annotations

import dataclasses

from ..context.contextmatch import ContextMatch
from ..context.model import ContextMatchConfig, MatchResult
from ..errors import MappingError
from ..relational.instance import Database
from .clio import SchemaMapping, generate_mapping

__all__ = ["ClioQualTableResult", "clio_qual_table"]


@dataclasses.dataclass
class ClioQualTableResult:
    """Matching result, generated mapping, and the mapped target instance."""

    matches: MatchResult
    mapping: SchemaMapping | None
    mapped: Database | None

    @property
    def succeeded(self) -> bool:
        return self.mapped is not None


def clio_qual_table(source: Database, target: Database,
                    config: ContextMatchConfig | None = None,
                    *, execute: bool = True,
                    min_confidence: float = 0.0) -> ClioQualTableResult:
    """Run ContextMatch (QualTable selection) and generate + execute the
    extended-Clio mapping from its output.

    Attribute normalization needs all per-value views simultaneously, so
    the configuration defaults to ``LateDisjuncts`` ("selecting multiple
    candidate views is analogous to disjuncting over those views").
    """
    if config is None:
        config = ContextMatchConfig(early_disjuncts=False,
                                    selection="qualtable")
    result = ContextMatch(config).run(source, target)
    if not result.matches:
        return ClioQualTableResult(matches=result, mapping=None, mapped=None)
    try:
        mapping = generate_mapping(result.matches, source, target.schema,
                                   min_confidence=min_confidence)
    except MappingError:
        return ClioQualTableResult(matches=result, mapping=None, mapped=None)
    mapped = mapping.execute(source) if execute else None
    return ClioQualTableResult(matches=result, mapping=mapping, mapped=mapped)
