"""Composable pipeline stages — Algorithm ContextMatch (Figure 5) unrolled.

The monolithic driver loop is decomposed into five explicit stages so
deployments can instrument, replace, or extend individual steps (modern
matching systems are configurable multi-stage processes, not monoliths):

1. :class:`StandardMatchStage` — accepted prototype matches per source
   relation (``StandardMatch(RS, RT, τ)``, line 4);
2. :class:`InferViewsStage` — candidate view families
   (``InferCandidateViews``, line 5);
3. :class:`ScoreCandidatesStage` — re-score every prototype against every
   candidate view, accumulating RL (``ScoreMatch``, lines 6-11);
4. :class:`SelectStage` — the matches to present
   (``SelectContextualMatches``, line 12);
5. :class:`ConjunctiveRefineStage` — iterate over selected views for
   conjunctive conditions (Section 3.5).

Stages communicate through a mutable :class:`PipelineState` and run in
list order; each returns diagnostic counts for its
:class:`~repro.engine.report.StageReport`.  The decomposition is
result-preserving: the only randomized step is view inference, and the
stage-major order issues its RNG draws in exactly the relation order the
original fused loop did.
"""

from __future__ import annotations

import abc
import dataclasses

from ..context.candidates import CandidateViewGenerator, InferenceContext
from ..context.conjunctive import refine_conjunctive
from ..context.model import ContextMatchConfig, MatchResult
from ..context.score import score_family_candidates
from ..context.select import select_matches
from ..matching.matchers import AttributeSample
from ..matching.standard import AttributeMatch, MatchingSystem
from ..matching.tokens import token_cache_counters
from ..profiling import ProfileStore
from ..relational.instance import Database, Relation
from ..relational.views import View, ViewFamily
from ..retrieval import RetrievalIndex, ScoringFrontier
from .prepared import PreparedTarget


def _token_counters_since(before: dict[str, int]) -> dict[str, int]:
    """Shared q-gram cache deltas for one stage's work."""
    now = token_cache_counters()
    return {key: now[key] - before.get(key, 0) for key in now}

__all__ = ["PipelineState", "Stage", "StandardMatchStage",
           "InferViewsStage", "ScoreCandidatesStage", "SelectStage",
           "ConjunctiveRefineStage", "default_stages"]


@dataclasses.dataclass
class PipelineState:
    """Everything one run reads and writes, shared by all stages.

    ``result`` is the :class:`MatchResult` under construction; the keyed
    intermediates (``accepted``, ``families``) let later stages look up
    per-relation products of earlier ones without re-deriving them.
    """

    source: Database
    prepared: PreparedTarget
    config: ContextMatchConfig
    matcher: MatchingSystem
    generator: CandidateViewGenerator
    ctx: InferenceContext
    result: MatchResult
    #: Accepted prototype matches keyed by source relation name.
    accepted: dict[str, list[AttributeMatch]] = dataclasses.field(
        default_factory=dict)
    #: Inferred view families keyed by source relation name.
    families: dict[str, list[ViewFamily]] = dataclasses.field(
        default_factory=dict)
    #: Source-side profile/partition cache (:mod:`repro.profiling`); None
    #: when profiling is disabled or the matcher does not support it.
    #: Long-lived when the run was given a
    #: :class:`~repro.engine.prepared.PreparedSource`, per-run otherwise.
    store: ProfileStore | None = None

    def store_counters(self) -> dict[str, int] | None:
        """Snapshot of the store's reuse counters (None without a store)."""
        return self.store.counters() if self.store is not None else None

    def store_counters_since(self, before: dict[str, int] | None
                             ) -> dict[str, int]:
        """Counter deltas for one stage's work (empty without a store)."""
        if self.store is None or before is None:
            return {}
        return self.store.counters_since(before)


class Stage(abc.ABC):
    """One step of the matching pipeline.

    Stages must be stateless across runs (one stage list may serve many
    concurrent-in-time runs of the same engine); all per-run state lives
    in the :class:`PipelineState`.
    """

    name: str = "stage"

    @abc.abstractmethod
    def run(self, state: PipelineState) -> dict[str, int]:
        """Execute the stage, mutating ``state``; returns the diagnostic
        counts recorded in this stage's :class:`StageReport`."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class StandardMatchStage(Stage):
    """Accepted prototype matches from the black-box standard matcher.

    With a profile store in play, source columns are scored from cached
    :class:`~repro.profiling.ColumnProfile` objects — a run against a
    :class:`~repro.engine.prepared.PreparedSource` reports all
    ``profile_hits`` here from its second run on.
    """

    name = "standard-match"

    def run(self, state: PipelineState) -> dict[str, int]:
        before = state.store_counters()
        tokens_before = token_cache_counters()
        use_store = (state.store is not None
                     and getattr(state.matcher, "supports_profile_store",
                                 False))
        for relation in state.source:
            if use_store:
                scored = state.matcher.score_relation(
                    relation, state.prepared.index, store=state.store)
            else:
                scored = state.matcher.score_relation(
                    relation, state.prepared.index)
            accepted = [m for m in scored
                        if state.matcher.accept(m, state.config.tau)]
            state.accepted[relation.name] = accepted
            state.result.standard_matches.extend(accepted)
        return {"relations": len(state.accepted),
                "accepted": len(state.result.standard_matches),
                **state.store_counters_since(before),
                **_token_counters_since(tokens_before)}


class InferViewsStage(Stage):
    """Candidate view families per source relation (``InferCandidateViews``).

    The inference hot path: with ``config.use_batch_inference`` (default)
    classifier work runs through the vectorized batch core, and the stage
    counts surface it — ``values_classified`` / ``batch_calls`` /
    ``merges_without_retrain`` from the run's
    :class:`~repro.context.candidates.InferenceStats` plus the shared
    q-gram cache's ``token_cache_hits`` / ``token_cache_misses`` deltas.
    """

    name = "infer-views"

    def run(self, state: PipelineState) -> dict[str, int]:
        stats_before = state.ctx.stats.snapshot()
        tokens_before = token_cache_counters()
        for relation in state.source:
            families = state.generator.infer(
                relation, state.accepted.get(relation.name, []), state.ctx)
            state.families[relation.name] = families
            state.result.families.extend(families)
        n_views = sum(len(f.views()) for fs in state.families.values()
                      for f in fs)
        return {"families": len(state.result.families), "views": n_views,
                **state.ctx.stats.since(stats_before),
                **_token_counters_since(tokens_before)}


class ScoreCandidatesStage(Stage):
    """Re-score every prototype match against the candidate views (RL).

    The ScoreMatch hot path: with a profile store each base relation is
    partitioned once per family attribute and member views are scored from
    partition cells (merged groups composing additive profiles from cell
    profiles), instead of materializing and re-profiling every view.  The
    stage's counts surface the cache economics: ``partitions_built`` /
    ``partition_hits`` and ``profile_hits`` / ``profile_misses`` /
    ``profiles_merged``.

    With ``config.use_retrieval`` (default, requires a matching system
    that opts in via ``supports_target_subset``) the target side of every
    rescoring is pruned to the :class:`~repro.retrieval.RetrievalIndex`
    frontier: each source attribute is queried once per relation and its
    retrieved top-k positions — always widened by the attribute's accepted
    prototype targets, so no RL entry is lost — bound the Φ-normalization
    pool.  The pruning economics land in the stage counts
    (``pairs_considered`` / ``pairs_pruned`` / ``retrieval_queries`` /
    ``retrieval_hits`` / ``retrieval_missed`` / ``retrieval_recall``);
    exhaustive runs report the same keys with zero pruning.
    """

    name = "score-candidates"

    @staticmethod
    def _source_qgrams(state: PipelineState, relation: Relation,
                       attr_name: str):
        """The q-gram frequency profile of one source column for frontier
        queries — from the run's profile store when already built (via the
        counter-neutral peek, keeping golden counter baselines stable),
        re-profiled from the raw column otherwise."""
        if state.store is not None:
            profile = state.store.peek_base_profile(relation.name, attr_name)
            if profile is not None:
                grams = profile.profiles.get("qgram")
                if grams is not None:
                    return grams
        qgram_matcher = next(
            (m for m in getattr(state.matcher, "matchers", ())
             if m.name == "qgram"), None)
        if qgram_matcher is None:
            return None
        sample = AttributeSample.from_relation(
            relation, relation.schema.attribute(attr_name),
            limit=state.prepared.standard_config.sample_limit)
        return qgram_matcher.profile(sample)

    def _build_frontier(self, state: PipelineState,
                        retrieval: RetrievalIndex, relation: Relation,
                        ) -> tuple[ScoringFrontier, int, int, int]:
        """(frontier, queries, hits, missed) for one source relation."""
        top_k = state.config.retrieval_top_k
        by_attr: dict[str, set[tuple[str, str]]] = {}
        for match in state.accepted.get(relation.name, []):
            by_attr.setdefault(match.source.attribute, set()).add(
                (match.target.table, match.target.attribute))
        positions: dict[str, tuple[int, ...]] = {}
        queries = hits = missed = 0
        for attribute in relation.schema:
            targets = by_attr.get(attribute.name)
            if targets is None:
                continue
            # The identity fast path (k >= n_targets) never reads the
            # grams — skip profiling the column in that case.
            grams = (self._source_qgrams(state, relation, attribute.name)
                     if top_k < retrieval.n_targets else None)
            retrieved = set(retrieval.query(attribute, grams, top_k))
            queries += 1
            accepted_positions = set()
            for table, attr in targets:
                position = retrieval.position_of(table, attr)
                if position is not None:
                    accepted_positions.add(position)
            hits += len(accepted_positions & retrieved)
            missed += len(accepted_positions - retrieved)
            positions[attribute.name] = tuple(
                sorted(retrieved | accepted_positions))
        return (ScoringFrontier(retrieval.n_targets, positions),
                queries, hits, missed)

    def run(self, state: PipelineState) -> dict[str, int]:
        before = state.store_counters()
        retrieval = getattr(state.prepared, "retrieval", None)
        use_retrieval = (state.config.use_retrieval
                         and retrieval is not None
                         and getattr(state.matcher,
                                     "supports_target_subset", False))
        n_targets = len(state.prepared.index.samples)
        queries = hits = missed = 0
        pairs_considered = pairs_pruned = 0
        for relation in state.source:
            seen_views: set[View] = set()
            if use_retrieval:
                frontier, q, h, m = self._build_frontier(
                    state, retrieval, relation)
                queries += q
                hits += h
                missed += m
            else:
                # Counting-only frontier: exhaustive scoring with the same
                # pairs_considered accounting, zero pruning.
                frontier = ScoringFrontier(n_targets)
            for family in state.families.get(relation.name, []):
                state.result.candidates.extend(score_family_candidates(
                    family, relation, state.accepted.get(relation.name, []),
                    state.matcher, state.prepared.index,
                    min_view_rows=state.config.min_view_rows,
                    seen_views=seen_views, store=state.store,
                    frontier=frontier))
            pairs_considered += frontier.pairs_considered
            pairs_pruned += frontier.pairs_pruned
        recall = hits / (hits + missed) if (hits + missed) else 1.0
        return {"candidates": len(state.result.candidates),
                "pairs_considered": pairs_considered,
                "pairs_pruned": pairs_pruned,
                "retrieval_queries": queries,
                "retrieval_hits": hits,
                "retrieval_missed": missed,
                "retrieval_recall": recall,
                **state.store_counters_since(before)}


class SelectStage(Stage):
    """Choose the matches to present (``SelectContextualMatches``)."""

    name = "select"

    def run(self, state: PipelineState) -> dict[str, int]:
        config = state.config
        state.result.matches = select_matches(
            state.result.standard_matches, state.result.candidates,
            selection=config.selection, omega=config.omega,
            early_disjuncts=config.early_disjuncts)
        contextual = sum(1 for m in state.result.matches if m.is_contextual)
        return {"selected": len(state.result.matches),
                "contextual": contextual}


class ConjunctiveRefineStage(Stage):
    """Iterate ContextMatch over selected views for conjunctive conditions.

    Runs ``conjunctive_stages - 1`` refinement iterations; with the default
    configuration (``conjunctive_stages=1``) it is a timed no-op, so the
    stage still appears in every :class:`RunReport`.

    Refinement profiles *restricted* stage relations (views selected this
    run), which are per-selection artifacts — so the stage uses its own
    stage-scoped :class:`~repro.profiling.ProfileStore` rather than the
    run's (possibly :class:`~repro.engine.prepared.PreparedSource`-backed)
    store, whose lifetime would pin every materialized stage relation.
    The stage-local cache counters are reported in the stage counts.
    """

    name = "conjunctive-refine"

    def run(self, state: PipelineState) -> dict[str, int]:
        iterations = 0
        store = None
        if state.store is not None:
            store = ProfileStore(state.store.matchers,
                                 state.store.sample_limit)
        for _stage in range(1, state.config.conjunctive_stages):
            matches, families, candidates = refine_conjunctive(
                state.result.matches, state.source, state.generator,
                state.matcher, state.prepared.index, state.ctx,
                store=store)
            state.result.matches = matches
            state.result.families.extend(families)
            state.result.candidates.extend(candidates)
            iterations += 1
        counts = {"iterations": iterations,
                  "matches": len(state.result.matches)}
        if store is not None and iterations:
            counts.update(store.counters())
        return counts


def default_stages() -> list[Stage]:
    """The paper's five-stage ContextMatch pipeline, in order."""
    return [StandardMatchStage(), InferViewsStage(), ScoreCandidatesStage(),
            SelectStage(), ConjunctiveRefineStage()]
