"""EngineRunner keying and store backing.

The regression pinned here: the runner's prepared LRUs used to key on
``id(database)``, which (a) treated every rebuilt copy of the same
workload as new — sweeps that rebuild per point silently re-prepared
everything — and (b) could alias a *different* database onto a stale
prepared artifact once the original was garbage collected and its
address recycled.  Content-token keys fix both: equal content is one
entry, regardless of object identity or lifetime.
"""

from __future__ import annotations

import pytest

from repro import ArtifactStore, ContextMatchConfig, MatchEngine
from repro.datagen import build_scenario, get_scenario
from repro.evaluation import EngineRunner
from repro.evaluation.scenarios import run_scenario, scenario_config


@pytest.fixture(scope="module")
def spec():
    return get_scenario("events").resized(60)


class TestContentTokenKeying:
    def test_equal_content_shares_one_prepared_entry(self, spec):
        """Two independently built (distinct-object) copies of one
        workload hit the same LRU slot — the satellite's regression
        test."""
        runner = EngineRunner()
        engine = MatchEngine(scenario_config(spec))
        first_target = build_scenario(spec).target
        second_target = build_scenario(spec).target
        assert first_target is not second_target
        prepared_first = runner.prepared_for(engine, first_target)
        prepared_second = runner.prepared_for(engine, second_target)
        assert prepared_second is prepared_first
        assert len(runner._prepared) == 1

    def test_token_survives_object_death(self, spec):
        """After the original database is gone (and its id() free for
        recycling), a rebuilt copy still maps to the same entry."""
        runner = EngineRunner()
        engine = MatchEngine(scenario_config(spec))
        prepared = runner.prepared_for(engine, build_scenario(spec).target)
        import gc
        gc.collect()  # the first target object is now dead
        again = runner.prepared_for(engine, build_scenario(spec).target)
        assert again is prepared

    def test_different_configs_never_share(self, spec):
        """Engines whose artifacts are incompatible keep separate
        entries even over one database object."""
        import dataclasses

        from repro.matching import StandardMatchConfig

        runner = EngineRunner()
        target = build_scenario(spec).target
        base = MatchEngine(scenario_config(spec))
        tweaked = MatchEngine(dataclasses.replace(
            scenario_config(spec),
            standard=StandardMatchConfig(sample_limit=123)))
        assert runner.prepared_for(base, target) \
            is not runner.prepared_for(tweaked, target)
        assert len(runner._prepared) == 2

    def test_prepared_sources_key_on_content_too(self, spec):
        runner = EngineRunner()
        engine = MatchEngine(scenario_config(spec))
        first = runner.prepared_source_for(
            engine, build_scenario(spec).source)
        second = runner.prepared_source_for(
            engine, build_scenario(spec).source)
        assert first is second

    def test_token_memo_is_per_object(self, spec):
        runner = EngineRunner()
        target = build_scenario(spec).target
        token = runner.database_token(target)
        assert runner.database_token(target) == token  # memo hit
        assert runner.database_token(build_scenario(spec).target) == token


class TestStoreBackedRunner:
    def test_two_processes_one_preparation(self, tmp_path):
        """A store-backed runner persists its preparation; a second
        (fresh) runner over the same store loads instead of re-preparing
        — the serve-loop artifact path, driven through the evaluation
        tier."""
        store = ArtifactStore(tmp_path / "store")
        cold = run_scenario("events", runner=EngineRunner(store=store))
        assert store.counters["saves"] == 1
        assert len(store) == 1

        warm_store = ArtifactStore(store.root)  # fresh handle, same disk
        warm = run_scenario("events",
                            runner=EngineRunner(store=warm_store))
        assert warm_store.counters["loads"] == 1
        assert warm_store.counters["saves"] == 0
        assert warm.metrics == cold.metrics
        assert warm.n_matches == cold.n_matches

    def test_loaded_preparation_replays_the_cold_run(self, tmp_path):
        """The store snapshots *prepare-time* state, so a fresh runner
        over the loaded artifact retraces the cold run counter for
        counter — the behavioral face of bit-identical restoration."""
        store = ArtifactStore(tmp_path / "store")
        cold = run_scenario("events", runner=EngineRunner(store=store))
        warm = run_scenario("events",
                            runner=EngineRunner(store=ArtifactStore(
                                store.root)))
        assert warm.counters == cold.counters
        assert warm.counters["partitions_built"] > 0  # both runs are first runs

    def test_storeless_runner_unchanged(self):
        runner = EngineRunner()
        assert runner.store is None
        result = run_scenario("events", runner=runner)
        assert result.n_matches > 0

    def test_custom_engine_bypasses_store(self, tmp_path, spec):
        """Identity-fingerprinted engines prepare in memory; the store
        stays empty rather than holding unservable artifacts."""
        from repro.matching import StandardMatch

        class Custom(StandardMatch):
            pass

        store = ArtifactStore(tmp_path / "store")
        runner = EngineRunner(store=store)
        engine = MatchEngine(ContextMatchConfig(),
                             matcher=Custom(ContextMatchConfig().standard))
        runner.prepared_for(engine, build_scenario(spec).target)
        assert len(store) == 0
