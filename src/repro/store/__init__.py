"""Persistent artifact store — prepared match artifacts that outlive the
process.

The enterprise workload this library targets is hub-and-spoke: a small
set of stable hub schemas is prepared once and matched against many
incoming sources.  :class:`ArtifactStore` makes the expensive half of
that durable: :class:`~repro.engine.prepared.PreparedTarget` and
:class:`~repro.engine.prepared.PreparedSource` blobs saved to disk keyed
by their sha256 content token, each with a versioned JSON manifest, with
digest + version verification on every load (typed errors, never a
corrupt artifact silently served) and ``list``/``gc`` maintenance.

Layers above build on it: store-aware
:meth:`MatchEngine.prepare(..., store=...)
<repro.engine.engine.MatchEngine.prepare>`, the
:class:`~repro.evaluation.runner.EngineRunner` prepared-LRU (content-token
keyed, optionally store-backed), the ``repro store`` CLI, and the
``repro serve`` loop (:mod:`repro.service`), which loads hub targets from
a store once and answers match requests from a warm LRU.
"""

from .artifacts import (KIND_RETRIEVAL, KIND_SOURCE, KIND_TARGET,
                        STORE_FORMAT, ArtifactStore, StoreEntry,
                        store_entry_from_dict, store_entry_to_dict)
from .tokens import (blob_token, database_token, fingerprint_token,
                     update_digest_with_database)

__all__ = [
    "ArtifactStore",
    "StoreEntry",
    "STORE_FORMAT",
    "KIND_TARGET",
    "KIND_SOURCE",
    "KIND_RETRIEVAL",
    "store_entry_to_dict",
    "store_entry_from_dict",
    "blob_token",
    "database_token",
    "fingerprint_token",
    "update_digest_with_database",
]
