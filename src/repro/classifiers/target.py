"""Per-type target-column classifiers (paper Figure 7, ``TgtClassInfer``).

``createTargetClassifier(D, RT)`` builds one classifier per basic domain D
trained on every compatible target column: each value of ``RT.a`` is taught
with the label ``"RT.a"``.  Applied to a source value, the classifier
guesses which target column the value "should appear in" — the tag that
``TgtClassInfer`` then correlates with the source's categorical attributes.

Tagging is the hottest classifier loop of a ``tgt``-inference run (every
sampled source value is scored against every compatible target column), so
the set exposes :meth:`TargetClassifierSet.classify_many`, which routes
whole columns through the family classifier's batch path — distinct values
are tagged once and the Naive Bayes family classifier answers from its
compiled log-probability matrix.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..relational.instance import Database
from ..relational.schema import AttributeRef
from ..relational.types import DataType, is_missing
from ..sampling import systematic_thin
from .base import Classifier
from .naive_bayes import NaiveBayesClassifier
from .numeric import GaussianClassifier

__all__ = ["TargetClassifierSet", "create_target_classifier"]


def _new_classifier(family: str) -> Classifier:
    if family == "numeric":
        return GaussianClassifier()
    return NaiveBayesClassifier(q=3)


class TargetClassifierSet:
    """One classifier per domain family, trained on the target schema.

    Labels are qualified column tags (``"book.title"``); lookups route a
    value to the family classifier matching the *source* attribute's type,
    exactly as the per-domain classifiers C_D^T of Figure 7.
    """

    def __init__(self, classifiers: dict[str, Classifier]):
        self._classifiers = classifiers

    @classmethod
    def train(cls, target: Database,
              *, sample_limit: int | None = None) -> "TargetClassifierSet":
        """Train family classifiers on every column of *target*.

        ``sample_limit`` caps training values per column (deterministic
        thinning) to keep repeated experiment sweeps fast.
        """
        classifiers: dict[str, Classifier] = {}
        for relation in target:
            for attribute in relation.schema:
                family = attribute.dtype.family
                classifier = classifiers.get(family)
                if classifier is None:
                    classifier = _new_classifier(family)
                    classifiers[family] = classifier
                tag = str(AttributeRef(relation.name, attribute.name))
                values = relation.non_missing(attribute.name)
                if sample_limit is not None:
                    values = systematic_thin(values, sample_limit)
                classifier.teach_many(values, [tag] * len(values))
        return cls(classifiers)

    def families(self) -> frozenset[str]:
        return frozenset(self._classifiers)

    def classifier_for(self, dtype: DataType) -> Classifier | None:
        return self._classifiers.get(dtype.family)

    def classify(self, value: Any, dtype: DataType) -> str | None:
        """Tag a source value with the most similar target column."""
        if is_missing(value):
            return None
        classifier = self.classifier_for(dtype)
        if classifier is None:
            return None
        tag = classifier.classify(value)
        return None if tag is None else str(tag)

    def classify_many(self, values: Sequence[Any],
                      dtype: DataType) -> list[str | None]:
        """Batch-tag a column of source values (in input order).

        Identical to per-value :meth:`classify` calls, but missing values
        are skipped up front and the rest go through the family
        classifier's vectorized :meth:`~Classifier.classify_many`.
        """
        classifier = self.classifier_for(dtype)
        if classifier is None:
            return [None] * len(values)
        present = [i for i, value in enumerate(values)
                   if not is_missing(value)]
        tags: list[str | None] = [None] * len(values)
        if not present:
            return tags
        predicted = classifier.classify_many([values[i] for i in present])
        for i, tag in zip(present, predicted):
            tags[i] = None if tag is None else str(tag)
        return tags


def create_target_classifier(target: Database,
                             *, sample_limit: int | None = None) -> TargetClassifierSet:
    """Functional alias mirroring the paper's ``createTargetClassifier``."""
    return TargetClassifierSet.train(target, sample_limit=sample_limit)
