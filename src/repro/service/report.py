"""Service-side diagnostics: request latency and cache effectiveness.

A long-lived ``repro serve`` process answers many requests; what matters
operationally is the latency distribution under concurrent load and
whether the warm caches actually absorb the hub-and-spoke workload (one
store load per target per process, everything after that an LRU hit).
:class:`ServiceReport` is the snapshot the ``/report`` endpoint returns
and the latency benchmark records: request/error counts per endpoint,
latency percentiles over a sliding window, LRU hit/miss/eviction/load
counters, the artifact store's own counters, and the executor backend in
use.  Like the engine's :class:`~repro.engine.report.RunReport` it is
pure data — ``to_dict``/``from_dict`` round-trip it losslessly.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping

__all__ = ["ServiceReport", "latency_summary", "percentile",
           "service_report_to_dict", "service_report_from_dict"]


def percentile(values: list[float], q: float) -> float:
    """The *q*-th percentile (0-100) of *values* by linear interpolation
    between order statistics; 0.0 for an empty series."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def latency_summary(values: list[float]) -> dict[str, float]:
    """p50/p90/p99/mean/max summary of a latency series (milliseconds)."""
    if not values:
        return {"n": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0}
    return {
        "n": len(values),
        "p50": percentile(values, 50.0),
        "p90": percentile(values, 90.0),
        "p99": percentile(values, 99.0),
        "mean": sum(values) / len(values),
        "max": max(values),
    }


@dataclasses.dataclass
class ServiceReport:
    """One snapshot of a running match service.

    Attributes
    ----------
    version / store_path:
        The serving library version and the artifact store directory —
        every ``--json`` surface of the service carries both.
    uptime_seconds / requests / errors:
        Process-lifetime totals; ``endpoints`` breaks requests down per
        route.
    latency_ms:
        :func:`latency_summary` percentiles per endpoint, measured
        server-side over a sliding window of recent requests.
    lru:
        Warm prepared-target cache counters: ``hits`` / ``misses`` /
        ``evictions`` / ``loads`` (store deserializations this cache
        caused) plus current ``size`` and ``capacity``.  ``loads`` equal
        to the number of distinct targets served is the proof that each
        target was read from disk exactly once per process.
    store:
        The backing :class:`~repro.store.ArtifactStore` counters
        (saves, dedup_hits, loads, find hits/misses) and entry count.
    executor:
        Batch backend in use (``backend``, ``workers``) for
        ``/match-many`` requests.
    targets:
        Warm targets, most recently used first: content token, database
        name and runs served.
    retrieval:
        Process-lifetime candidate-retrieval totals over every run this
        service answered: ``queries`` / ``pairs_considered`` /
        ``pairs_pruned`` / ``hits`` / ``missed`` and the derived
        ``recall`` (1.0 when nothing was prunable) — how much scoring
        work the :mod:`repro.retrieval` frontier saved, and whether it
        ever dropped an accepted match.
    repository:
        Cross-target routing totals for ``/match-repository`` requests:
        ``requests`` (sources routed) and ``pairs`` (source × hub match
        runs those requests fanned out to).
    token_cache:
        The shared :class:`~repro.matching.tokens.QGramCache` hit/miss
        counters (process-wide), so tokenization-cache efficacy is
        observable over HTTP next to the retrieval counters.
    """

    version: str
    store_path: str
    uptime_seconds: float
    requests: int
    errors: int
    endpoints: dict[str, int] = dataclasses.field(default_factory=dict)
    latency_ms: dict[str, dict[str, float]] = \
        dataclasses.field(default_factory=dict)
    lru: dict[str, int] = dataclasses.field(default_factory=dict)
    store: dict[str, int] = dataclasses.field(default_factory=dict)
    executor: dict[str, Any] = dataclasses.field(default_factory=dict)
    targets: list[dict[str, Any]] = dataclasses.field(default_factory=list)
    retrieval: dict[str, Any] = dataclasses.field(default_factory=dict)
    repository: dict[str, int] = dataclasses.field(default_factory=dict)
    token_cache: dict[str, int] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServiceReport":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def __str__(self) -> str:
        match = self.latency_ms.get("match", {})
        return (f"service up {self.uptime_seconds:.0f}s: "
                f"{self.requests} requests ({self.errors} errors), "
                f"match p50 {match.get('p50', 0.0):.1f}ms / "
                f"p99 {match.get('p99', 0.0):.1f}ms, "
                f"lru {self.lru.get('hits', 0)} hits / "
                f"{self.lru.get('misses', 0)} misses / "
                f"{self.lru.get('loads', 0)} store loads")


def service_report_to_dict(report: ServiceReport) -> dict[str, Any]:
    """Serialize a :class:`ServiceReport` (the ``/report`` JSON shape)."""
    return report.to_dict()


def service_report_from_dict(data: Mapping[str, Any]) -> ServiceReport:
    """Inverse of :func:`service_report_to_dict`."""
    return ServiceReport.from_dict(data)
