"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch every library failure with a single ``except`` clause while still being
able to distinguish schema problems from data problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class SchemaError(ReproError):
    """A schema is malformed or an attribute/table reference cannot resolve."""


class UnknownAttributeError(SchemaError):
    """An attribute name does not exist in the referenced table."""

    def __init__(self, table: str, attribute: str):
        super().__init__(f"table {table!r} has no attribute {attribute!r}")
        self.table = table
        self.attribute = attribute


class UnknownTableError(SchemaError):
    """A table name does not exist in the referenced schema."""

    def __init__(self, schema: str, table: str):
        super().__init__(f"schema {schema!r} has no table {table!r}")
        self.schema = schema
        self.table = table


class InstanceError(ReproError):
    """Instance data is inconsistent with its schema (arity, column length)."""


class ConditionError(ReproError):
    """A selection condition is malformed or references missing attributes."""


class ConstraintError(ReproError):
    """A key / foreign-key constraint is malformed."""


class MappingError(ReproError):
    """Schema-mapping construction failed (no join path, bad correspondence)."""


class MatchingError(ReproError):
    """The matching pipeline was configured or invoked incorrectly."""


class EngineError(ReproError):
    """The match engine was misused (e.g. a PreparedTarget built under an
    incompatible configuration was passed to :meth:`MatchEngine.match`)."""


class StoreError(ReproError):
    """Base class for artifact-store failures.

    The :class:`~repro.store.ArtifactStore` never lets a corrupt or
    incompatible artifact reach ``pickle.loads``: every load failure is
    reported as one of the typed subclasses below, so callers can
    distinguish "not there" from "damaged" from "built by another
    version" without parsing messages.
    """


class ArtifactNotFoundError(StoreError):
    """No artifact with the requested content token exists in the store."""

    def __init__(self, token: str, store: str):
        super().__init__(f"no artifact {token!r} in store {store}")
        self.token = token
        self.store = store


class ArtifactIntegrityError(StoreError):
    """A stored artifact failed verification (truncated or bit-rotted blob,
    unreadable manifest, or a blob whose digest disagrees with its
    manifest).  Raised *before* deserialization — a damaged artifact is
    never unpickled, let alone served."""


class ArtifactVersionError(StoreError):
    """A stored artifact was written by an incompatible library or store-
    format version.  Pickled prepared artifacts carry version-coupled
    internals, so cross-version loads are refused with this error instead
    of surfacing as an arbitrary unpickling failure downstream."""
