"""Parallel-executor benchmark: serial vs process-pool ``match_many``.

Times a 20-source ``match_many`` batch against one shared prepared target
through both :class:`~repro.engine.MatchExecutor` backends:

* ``serial``: the in-process reference — tasks run sequentially on one
  core, sharing the caller's prepared artifacts directly;
* ``process``: a 4-worker ``ProcessPoolExecutor`` fan-out — the prepared
  target is pickled once, shipped through the pool initializer, and
  deserialized once per worker (the per-task payload is just the source
  database).

Both backends must produce identical matches for every source; the
headline number is the wall-time speedup of the process backend at 4
workers.  That floor is only meaningful on hardware that can actually run
4 workers concurrently, so it is asserted when the host's effective
parallelism is >= 4 (and never under ``BENCH_TINY``); lower-parallelism
hosts still run both backends, verify equivalence, and record their
numbers with the host parallelism alongside — the committed JSON always
says what hardware produced it.

Results are persisted to machine-readable ``results/BENCH_parallel.json``
(wall seconds, tasks/sec, per-backend busy time, prepared-artifact
transfer bytes, host parallelism) so the throughput trajectory is
trackable across PRs.  Set ``BENCH_TINY=1`` for a seconds-scale smoke run
(CI): schema and equivalence checks still apply, the speedup floor does
not.
"""

from conftest import BENCH_TINY, run_once
from repro import ContextMatchConfig, ExecutorConfig, MatchEngine
from repro.engine import MatchExecutor
from repro.engine.executor import effective_parallelism
from repro.datagen import make_retail_workload

MIN_SPEEDUP = 2.0
WORKERS = 4
N_SOURCES = 4 if BENCH_TINY else 20
N_ROWS = 150 if BENCH_TINY else 2500
CONFIG = dict(inference="src", seed=5)
GAMMA = 4


def _batch():
    """One shared target plus N_SOURCES independently-seeded sources."""
    workloads = [make_retail_workload(target="ryan", gamma=GAMMA,
                                      n_source=N_ROWS, seed=100 + i)
                 for i in range(N_SOURCES)]
    return [w.source for w in workloads], workloads[0].target


def _keys(result):
    return [(str(m.source), str(m.target), str(m.condition),
             m.score, m.confidence) for m in result.matches]


def test_parallel_throughput(benchmark, record_json):
    sources, target = _batch()
    engine = MatchEngine(ContextMatchConfig(**CONFIG))
    prepared = engine.prepare(target)

    serial_batch = MatchExecutor(ExecutorConfig(backend="serial")) \
        .match_many(engine, sources, prepared)
    with MatchExecutor(ExecutorConfig(backend="process",
                                      max_workers=WORKERS)) as executor:
        process_batch = run_once(benchmark, executor.match_many,
                                 engine, sources, prepared)

    # Bit-identical fan-out: every source's matches agree across backends.
    for serial_result, process_result in zip(serial_batch, process_batch):
        assert _keys(serial_result) == _keys(process_result)

    serial = serial_batch.throughput
    process = process_batch.throughput
    speedup = (serial.wall_seconds / process.wall_seconds
               if process.wall_seconds > 0 else 0.0)
    parallelism = effective_parallelism()
    floor_asserted = not BENCH_TINY and parallelism >= WORKERS

    record_json("BENCH_parallel", {
        "benchmark": "bench_parallel_throughput",
        "config": {**CONFIG, "gamma": GAMMA, "n_rows": N_ROWS,
                   "tiny": BENCH_TINY},
        "n_sources": N_SOURCES,
        "workers": WORKERS,
        "host": {"effective_parallelism": parallelism},
        "modes": {
            "serial": {
                "elapsed_seconds": serial.wall_seconds,
                "ops_per_second": serial.tasks_per_second,
                "busy_seconds": serial.busy_seconds,
            },
            "process": {
                "elapsed_seconds": process.wall_seconds,
                "ops_per_second": process.tasks_per_second,
                "busy_seconds": process.busy_seconds,
                "prepare_transfer_bytes": process.prepare_transfer_bytes,
            },
        },
        "speedup": {"process_vs_serial": speedup},
        "floor": {"required": MIN_SPEEDUP, "workers": WORKERS,
                  "asserted": floor_asserted},
    })
    print(f"\nserial:  {serial}")
    print(f"process: {process}")
    print(f"speedup: {speedup:.2f}x at {WORKERS} workers "
          f"(host parallelism {parallelism}, floor "
          f"{'asserted' if floor_asserted else 'skipped'})")

    assert process.prepare_transfer_bytes > 0
    assert process.workers == WORKERS
    assert len(process.task_seconds) == N_SOURCES
    if floor_asserted:
        assert speedup >= MIN_SPEEDUP, (
            f"process fan-out at {WORKERS} workers should be >= "
            f"{MIN_SPEEDUP}x serial on a >= {WORKERS}-core host, got "
            f"{speedup:.2f}x")
