"""Repository routing benchmark: shared preparation vs K independent runs.

Times :meth:`~repro.repository.TargetRepository.route_many` on the
routing fleet — M perturbed sources fanned against K prepared hubs —
against the naive baseline an operator without the repository layer
would run: for every (source, hub) pair a fresh
``MatchEngine(config).match(source, hub)``, i.e. M×K independent match
calls, each re-profiling the hub and the source from scratch.

The repository mode prepares each hub exactly once and each source's
:class:`~repro.engine.PreparedSource` exactly once per route, so the
measured difference is the preparation work the repository amortizes —
the matching pipeline itself is identical, and the benchmark asserts it:
every (source, hub) pair's accepted matches are bit-identical between
the two modes, and every source routes to its ground-truth hub.

Repository elapsed includes building the repository (hub preparation is
part of its cost, not a free warm-up), so the headline speedup is the
honest end-to-end ratio.  Results are persisted as machine-readable
``results/BENCH_repository.json``.  Set ``BENCH_TINY=1`` for a
seconds-scale smoke run (CI): bit-identity and routing accuracy still
apply, the ``MIN_SPEEDUP`` floor does not.
"""

import time

from conftest import BENCH_TINY, run_once
from repro import MatchEngine, TargetRepository
from repro.datagen import ROUTING_HUB_FAMILIES, make_routing_fleet

MIN_SPEEDUP = 1.5
#: Full scale uses the realistic repository shape — small arriving
#: sources (200 rows) routed against large prepared hubs (800 rows) —
#: so the hub preparation the repository amortizes is a real fraction
#: of the baseline's per-pair cost.  Tiny mode shrinks to the smallest
#: grid whose routing signal is still reliable (two hubs, one source
#: each, size 140 — below that the events/retail contextual margins
#: get noisy).
FLEET_CONFIG = (
    dict(hub_families=("events", "retail"), sources_per_hub=1, size=140)
    if BENCH_TINY else
    dict(hub_families=ROUTING_HUB_FAMILIES, sources_per_hub=2, size=800,
         source_size=200))


def _key(result):
    return [(str(m.source), str(m.target), str(m.condition),
             m.score, m.confidence) for m in result.matches]


def _independent_sweep(fleet):
    """The baseline: a fresh engine per (source, hub) pair — no shared
    PreparedSource, no prepared hubs, exactly ``repro match`` M×K times."""
    results = {}
    for case in fleet.sources:
        for family, hub in fleet.hubs.items():
            engine = MatchEngine()
            results[(case.name, family)] = engine.match(case.source, hub)
    return results


def _repository_sweep(fleet):
    repo = TargetRepository(MatchEngine())
    for hub in fleet.hubs.values():
        repo.add(hub)
    batch = repo.route_many([case.source for case in fleet.sources])
    return repo, batch


def test_repository_routing(benchmark, record_series, record_json):
    fleet = make_routing_fleet(**FLEET_CONFIG)
    n_hubs, n_sources = len(fleet.hubs), len(fleet.sources)
    pairs = n_hubs * n_sources

    start = time.perf_counter()
    independent = _independent_sweep(fleet)
    elapsed_independent = time.perf_counter() - start

    start = time.perf_counter()
    repo, batch = run_once(benchmark, _repository_sweep, fleet)
    elapsed_repository = time.perf_counter() - start

    token_to_family = dict(zip(repo.tokens(), fleet.hubs))

    # Bit-identity: every pair's accepted matches agree between modes.
    for case, routed in zip(fleet.sources, batch):
        for hub_score in routed.ranking:
            family = token_to_family[hub_score.token]
            assert _key(hub_score.result) \
                == _key(independent[(case.name, family)]), (
                    f"repository result for ({case.name}, {family}) "
                    f"diverges from the independent match")

    # Routing accuracy: every source lands on its ground-truth hub.
    assignments = {case.name: token_to_family[routed.best.token]
                   for case, routed in zip(fleet.sources, batch)}
    wrong = {name: got for name, got in assignments.items()
             if got != name.split("-")[2]}
    assert not wrong, f"mis-routed sources: {wrong}"
    accuracy = (n_sources - len(wrong)) / n_sources

    elapsed = {"independent": elapsed_independent,
               "repository": elapsed_repository}
    speedup = elapsed["independent"] / elapsed["repository"]
    ops = {mode: pairs / seconds if seconds > 0 else 0.0
           for mode, seconds in elapsed.items()}

    record_series(
        "repository_routing",
        f"TargetRepository.route_many vs {pairs} independent match calls "
        f"({n_sources} sources x {n_hubs} hubs)",
        "measurement",
        {"elapsed_seconds": elapsed,
         "pairs_per_second": ops,
         "speedup_vs_independent": {"independent": 1.0,
                                    "repository": speedup}},
        ["independent", "repository"])
    record_json("BENCH_repository", {
        "benchmark": "bench_repository",
        "config": {**{k: list(v) if isinstance(v, tuple) else v
                      for k, v in FLEET_CONFIG.items()},
                   "tiny": BENCH_TINY},
        "fleet": {"hubs": n_hubs, "sources": n_sources, "pairs": pairs},
        "modes": {
            mode: {"elapsed_seconds": elapsed[mode],
                   "pairs_considered": pairs,
                   "ops_per_second": ops[mode]}
            for mode in elapsed
        },
        "speedup": {"repository_vs_independent": speedup},
        "routing_accuracy": accuracy,
        "repository_counters": dict(repo.counters),
    })

    if not BENCH_TINY:
        assert speedup >= MIN_SPEEDUP, (
            f"repository routing should be >= {MIN_SPEEDUP}x the "
            f"independent sweep, got {speedup:.2f}x")
