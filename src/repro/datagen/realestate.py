"""Unrelated real-estate table used as schema-padding noise (Section 5.5).

"The extra non-categorical attributes are populated with random data from an
unrelated real estate table."  We synthesize that table: street addresses,
cities, agent names, square footage, listing prices — a population disjoint
from the retail domain so padded attributes provide realistic *noise*, not
accidental signal.
"""

from __future__ import annotations

import numpy as np

from ..relational.instance import Relation
from .text import person_name

__all__ = ["make_realestate_relation", "realestate_column"]

_STREETS = [
    "maple", "oak", "cedar", "elm", "willow", "birch", "chestnut",
    "sycamore", "juniper", "magnolia", "poplar", "hawthorn", "linden",
]
_STREET_KINDS = ["st", "ave", "blvd", "ln", "dr", "ct", "rd"]
_CITIES = [
    "springfield", "riverton", "fairview", "lakewood", "georgetown",
    "clinton", "salem", "madison", "arlington", "ashland", "dover",
    "milton", "newport", "oxford", "burlington",
]
_PROPERTY_TYPES = ["single family", "condo", "townhouse", "duplex", "loft"]


def _address(rng: np.random.Generator) -> str:
    number = int(rng.integers(1, 9900))
    street = _STREETS[int(rng.integers(len(_STREETS)))]
    kind = _STREET_KINDS[int(rng.integers(len(_STREET_KINDS)))]
    return f"{number} {street} {kind}"


def realestate_column(kind: str, n: int, rng: np.random.Generator) -> list:
    """One column of real-estate noise data.

    ``kind`` chooses the population: ``address``, ``city``, ``agent``,
    ``sqft``, ``listing`` (price) or ``property`` (type).
    """
    if kind == "address":
        return [_address(rng) for _ in range(n)]
    if kind == "city":
        return [_CITIES[int(rng.integers(len(_CITIES)))] for _ in range(n)]
    if kind == "agent":
        return [person_name(rng) for _ in range(n)]
    if kind == "sqft":
        return [int(v) for v in rng.normal(1850, 650, size=n).clip(350)]
    if kind == "listing":
        return [round(float(v), 2)
                for v in rng.lognormal(12.5, 0.4, size=n)]
    if kind == "property":
        return [_PROPERTY_TYPES[int(rng.integers(len(_PROPERTY_TYPES)))]
                for _ in range(n)]
    raise ValueError(f"unknown real-estate column kind {kind!r}")


#: Round-robin order used when padding schemas with noise attributes.
PAD_KINDS = ["address", "city", "agent", "sqft", "listing"]


def make_realestate_relation(n: int, rng: np.random.Generator,
                             *, name: str = "listings") -> Relation:
    """The full unrelated real-estate table (also used by tests/examples)."""
    return Relation.infer_schema(name, {
        "listing_id": list(range(1, n + 1)),
        "address": realestate_column("address", n, rng),
        "city": realestate_column("city", n, rng),
        "property_type": realestate_column("property", n, rng),
        "sqft": realestate_column("sqft", n, rng),
        "listing_price": realestate_column("listing", n, rng),
        "agent": realestate_column("agent", n, rng),
    })
