"""Disk-backed store of prepared match artifacts, keyed by content token.

PR 5 made every :class:`~repro.engine.prepared.PreparedTarget` and
:class:`~repro.engine.prepared.PreparedSource` picklable with a sha256
content token — but the artifacts still died with the process.
:class:`ArtifactStore` persists them:

* **Layout.**  One directory; each entry is a pair of files named by the
  blob's sha256 content token — ``<token>.blob`` (the pickled artifact)
  and ``<token>.json`` (a versioned manifest: artifact kind, library
  version, store format, engine fingerprint digest, byte size, blob
  digest, source-database token).  Writes are atomic (tmp + rename) and
  the manifest lands *after* its blob, so a manifest's existence always
  implies a complete entry; interrupted saves leave orphan blobs that
  :meth:`gc` sweeps.
* **Integrity.**  :meth:`load` re-reads the manifest, checks the store
  format and library version, re-hashes the blob and compares it to the
  manifest digest — all *before* ``pickle.loads``.  A truncated blob, a
  flipped bit, or an artifact written by a different library version
  raises a typed error (:class:`~repro.errors.ArtifactIntegrityError`,
  :class:`~repro.errors.ArtifactVersionError`); a corrupt artifact is
  never silently served and never surfaces as a pickle exception.
* **Lookup.**  Entries whose engine fingerprint is stable also carry a
  ``lookup_key`` — a digest of (kind, database content token, engine
  fingerprint) — so :meth:`find` can answer "is *this* database already
  prepared for *this* engine?" without touching any blob.
  :meth:`prepared_target` builds on it: load on hit, prepare-and-save on
  miss — the get-or-build primitive behind store-aware
  :meth:`~repro.engine.engine.MatchEngine.prepare` and the serving
  layer's warm LRU.
* **Maintenance.**  :meth:`entries` lists manifests (newest first);
  :meth:`gc` removes orphans and corrupt entries and can trim the store
  to a byte/entry budget, oldest first.

The round-trip invariant — a loaded artifact produces bit-identical
match results vs the in-memory prepared path — is pinned across the
all-20-scenario golden grid (``pytest -m golden``).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import time
from typing import Any, Iterable, Mapping

from .._version import __version__
from ..errors import (ArtifactIntegrityError, ArtifactNotFoundError,
                      ArtifactVersionError, StoreError)
from .tokens import blob_token, database_token, fingerprint_token

__all__ = ["ArtifactStore", "StoreEntry", "STORE_FORMAT",
           "KIND_TARGET", "KIND_SOURCE", "KIND_RETRIEVAL"]

#: On-disk format revision.  Bumped when the layout or manifest schema
#: changes incompatibly; loads refuse other revisions with a typed error.
STORE_FORMAT = 1

KIND_TARGET = "prepared-target"
KIND_SOURCE = "prepared-source"
KIND_RETRIEVAL = "retrieval_index"
_KINDS = (KIND_TARGET, KIND_SOURCE, KIND_RETRIEVAL)

_MANIFEST_SUFFIX = ".json"
_BLOB_SUFFIX = ".blob"


@dataclasses.dataclass(frozen=True)
class StoreEntry:
    """Manifest of one stored artifact — everything verifiable without
    touching the blob.

    ``token`` doubles as the blob digest (the store keys entries by the
    sha256 of the pickled payload); ``fingerprint`` / ``lookup_key`` are
    None for artifacts saved without a stable engine fingerprint, which
    are loadable by token but invisible to :meth:`ArtifactStore.find`.
    """

    token: str
    kind: str
    format: int
    version: str
    size_bytes: int
    created_at: float
    database: str
    tables: int
    fingerprint: str | None = None
    database_token: str | None = None
    lookup_key: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StoreEntry":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in fields})

    def __str__(self) -> str:
        return (f"{self.token[:12]}  {self.kind:<15} "
                f"{self.database:<12} {self.tables} tables  "
                f"{self.size_bytes} bytes  v{self.version}")


def _lookup_key(kind: str, db_token: str, fingerprint: str) -> str:
    payload = f"{kind}:{db_token}:{fingerprint}".encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _atomic_write(path: pathlib.Path, data: bytes) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class ArtifactStore:
    """A directory of prepared artifacts addressable by content token.

    Thread-safe for the operations the serving layer performs
    concurrently (token-addressed loads and reads): entries are immutable
    once their manifest exists, saves are atomic renames, and counters
    are simple integer bumps.  ``counters`` tracks ``saves`` (new blobs
    written), ``dedup_hits`` (saves that found their token already
    present), ``loads`` (verified blob deserializations), ``find_hits`` /
    ``find_misses`` (lookup-key probes).

    Example
    -------
    >>> import tempfile
    >>> from repro import MatchEngine
    >>> from repro.datagen import make_retail_workload
    >>> workload = make_retail_workload(target="ryan", seed=7)
    >>> store = ArtifactStore(tempfile.mkdtemp())
    >>> engine = MatchEngine()
    >>> entry = store.save(engine.prepare(workload.target), engine=engine)
    >>> loaded = store.load_target(entry.token)
    >>> loaded.table_names == engine.prepare(workload.target).table_names
    True
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.counters: dict[str, int] = {
            "saves": 0, "dedup_hits": 0, "loads": 0,
            "find_hits": 0, "find_misses": 0,
        }

    # -- paths ---------------------------------------------------------
    def _manifest_path(self, token: str) -> pathlib.Path:
        return self.root / f"{token}{_MANIFEST_SUFFIX}"

    def _blob_path(self, token: str) -> pathlib.Path:
        return self.root / f"{token}{_BLOB_SUFFIX}"

    def __contains__(self, token: object) -> bool:
        return (isinstance(token, str)
                and self._manifest_path(token).is_file())

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob(f"*{_MANIFEST_SUFFIX}"))

    # -- save ----------------------------------------------------------
    @staticmethod
    def _kind_of(artifact: Any) -> tuple[str, Any]:
        """(kind, described database) — the database is None for kinds
        that carry their schema metadata inline (retrieval indexes)."""
        # Imported here so the store stays importable from serialization
        # helpers without dragging the engine package into their import
        # graph at module load.
        from ..engine.prepared import PreparedSource, PreparedTarget
        from ..retrieval import RetrievalIndex
        if isinstance(artifact, PreparedTarget):
            return KIND_TARGET, artifact.target
        if isinstance(artifact, PreparedSource):
            return KIND_SOURCE, artifact.source
        if isinstance(artifact, RetrievalIndex):
            return KIND_RETRIEVAL, None
        raise StoreError(
            f"cannot store {type(artifact).__name__}: expected a "
            "PreparedTarget, PreparedSource or RetrievalIndex")

    def save(self, artifact: Any, *, engine: Any = None) -> StoreEntry:
        """Persist a prepared artifact; returns its manifest.

        The blob is pickled once; its sha256 is the entry's token.
        Saving the same content twice lands on one entry
        (``dedup_hits``): by blob digest when the bytes repeat exactly,
        and otherwise by the (kind, database token, engine fingerprint)
        lookup key — pickle bytes are *not* canonical across interpreter
        processes (hash randomization perturbs set/dict ordering), so
        the content-derived lookup key is what makes ``save`` idempotent
        across runs.  Passing the *engine* that built the artifact
        stamps the manifest with the engine's stable fingerprint digest
        and that lookup key, also making the entry discoverable via
        :meth:`find`; identity-fingerprinted engines (custom matching
        systems) yield token-only entries deduped by digest alone.
        """
        kind, database = self._kind_of(artifact)
        blob = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        token = blob_token(blob)
        if token in self:
            self.counters["dedup_hits"] += 1
            return self.entry(token)
        fingerprint = fingerprint_token(engine) if engine is not None \
            else None
        if database is not None:
            db_name = database.name
            n_tables = len(tuple(database))
            db_token = database_token(database)
        else:  # retrieval indexes carry their database metadata inline
            db_name = artifact.database_name
            n_tables = artifact.n_tables
            db_token = artifact.database_token
        if fingerprint is not None:
            lookup = _lookup_key(kind, db_token, fingerprint)
            for existing in self.entries():
                if existing.lookup_key == lookup:
                    self.counters["dedup_hits"] += 1
                    return existing
        entry = StoreEntry(
            token=token, kind=kind, format=STORE_FORMAT,
            version=__version__, size_bytes=len(blob),
            created_at=time.time(), database=db_name,
            tables=n_tables, fingerprint=fingerprint,
            database_token=db_token,
            lookup_key=(_lookup_key(kind, db_token, fingerprint)
                        if fingerprint is not None else None))
        _atomic_write(self._blob_path(token), blob)
        _atomic_write(self._manifest_path(token),
                      (json.dumps(entry.to_dict(), indent=2, sort_keys=True)
                       + "\n").encode("utf-8"))
        self.counters["saves"] += 1
        return entry

    # -- manifests -----------------------------------------------------
    def entry(self, token: str) -> StoreEntry:
        """The verified manifest of *token* (no blob access)."""
        path = self._manifest_path(token)
        if not path.is_file():
            raise ArtifactNotFoundError(token, str(self.root))
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            entry = StoreEntry.from_dict(data)
        except (ValueError, TypeError) as exc:
            raise ArtifactIntegrityError(
                f"unreadable manifest for artifact {token!r} in store "
                f"{self.root}: {exc}") from exc
        if entry.token != token:
            raise ArtifactIntegrityError(
                f"manifest for artifact {token!r} names token "
                f"{entry.token!r}; the store entry was tampered with or "
                "misfiled")
        return entry

    def entries(self) -> list[StoreEntry]:
        """Every readable manifest, newest first.  Unreadable manifests
        are skipped here (listing is a maintenance view); :meth:`load`
        and :meth:`gc` are where damage turns into errors/cleanup."""
        found = []
        for path in self.root.glob(f"*{_MANIFEST_SUFFIX}"):
            try:
                found.append(self.entry(path.stem))
            except StoreError:
                continue
        found.sort(key=lambda e: e.created_at, reverse=True)
        return found

    def _check_compatible(self, entry: StoreEntry) -> None:
        if entry.format != STORE_FORMAT:
            raise ArtifactVersionError(
                f"artifact {entry.token!r} uses store format "
                f"{entry.format}, this library reads format "
                f"{STORE_FORMAT}; re-prepare and re-save the artifact")
        if entry.version != __version__:
            raise ArtifactVersionError(
                f"artifact {entry.token!r} was saved by repro "
                f"{entry.version}, this is repro {__version__}; prepared "
                "artifacts carry version-coupled internals — re-prepare "
                "and re-save the artifact")

    # -- load ----------------------------------------------------------
    def load(self, token: str, *, expected_kind: str | None = None) -> Any:
        """Load and verify the artifact stored under *token*.

        Verification order: manifest readable → store format and library
        version match → blob present and its sha256 equals the token →
        only then ``pickle.loads`` → unpickled type matches the manifest
        kind.  Every failure raises a typed :class:`StoreError` subclass.
        """
        entry = self.entry(token)
        if expected_kind is not None and entry.kind != expected_kind:
            raise StoreError(
                f"artifact {token!r} is a {entry.kind}, expected "
                f"{expected_kind}")
        self._check_compatible(entry)
        blob_path = self._blob_path(token)
        if not blob_path.is_file():
            raise ArtifactIntegrityError(
                f"artifact {token!r} has a manifest but no blob in store "
                f"{self.root}")
        blob = blob_path.read_bytes()
        if len(blob) != entry.size_bytes or blob_token(blob) != token:
            raise ArtifactIntegrityError(
                f"artifact {token!r} failed digest verification "
                f"({len(blob)} bytes on disk vs {entry.size_bytes} in the "
                "manifest); the blob is truncated or corrupt — delete it "
                "via gc() and re-save")
        artifact = pickle.loads(blob)
        kind, _ = self._kind_of(artifact)
        if kind != entry.kind:
            raise ArtifactIntegrityError(
                f"artifact {token!r} unpickled as a {kind} but its "
                f"manifest says {entry.kind}")
        self.counters["loads"] += 1
        return artifact

    def load_target(self, token: str):
        """:meth:`load`, asserting the artifact is a PreparedTarget."""
        return self.load(token, expected_kind=KIND_TARGET)

    def load_source(self, token: str):
        """:meth:`load`, asserting the artifact is a PreparedSource."""
        return self.load(token, expected_kind=KIND_SOURCE)

    def load_retrieval_index(self, token: str):
        """:meth:`load`, asserting the artifact is a RetrievalIndex."""
        return self.load(token, expected_kind=KIND_RETRIEVAL)

    # -- lookup --------------------------------------------------------
    def find(self, kind: str, database: Any, engine: Any) -> str | None:
        """Token of the stored *kind* artifact for (database, engine), or
        None — including when the engine's fingerprint is unstable."""
        if kind not in _KINDS:
            raise StoreError(f"unknown artifact kind {kind!r}; "
                             f"choose one of {list(_KINDS)}")
        fingerprint = fingerprint_token(engine)
        if fingerprint is None:
            return None
        wanted = _lookup_key(kind, database_token(database), fingerprint)
        for entry in self.entries():
            if entry.lookup_key == wanted:
                self.counters["find_hits"] += 1
                return entry.token
        self.counters["find_misses"] += 1
        return None

    def find_target(self, database: Any, engine: Any) -> str | None:
        return self.find(KIND_TARGET, database, engine)

    def find_source(self, database: Any, engine: Any) -> str | None:
        return self.find(KIND_SOURCE, database, engine)

    def find_retrieval_index(self, database: Any, engine: Any) -> str | None:
        return self.find(KIND_RETRIEVAL, database, engine)

    def prepared_target(self, engine: Any, target: Any):
        """Get-or-build: the PreparedTarget for (engine, target), loaded
        from the store when present, otherwise prepared fresh and saved.

        Engines without a stable fingerprint bypass the store entirely
        (their artifacts are identity-scoped); the result is always
        usable, the store just stays out of the loop.
        """
        token = self.find_target(target, engine)
        if token is not None:
            return self.load_target(token)
        prepared = engine.prepare(target)
        if fingerprint_token(engine) is not None:
            self.save(prepared, engine=engine)
        return prepared

    # -- maintenance ---------------------------------------------------
    def gc(self, *, max_entries: int | None = None,
           verify: bool = True) -> dict[str, str]:
        """Sweep the store; returns {removed file stem: reason}.

        Removes blobs without manifests and manifests without blobs
        (interrupted saves), unreadable manifests, and — with *verify* —
        entries whose blob fails digest verification.  ``max_entries``
        then trims surviving entries to the newest N.  Version-mismatched
        entries are *kept*: they are valid data for the library that
        wrote them, and refusing to serve them is :meth:`load`'s job.
        """
        removed: dict[str, str] = {}

        def drop(token: str, reason: str) -> None:
            for path in (self._manifest_path(token), self._blob_path(token)):
                if path.is_file():
                    path.unlink()
            removed[token] = reason

        manifests = {p.stem for p in self.root.glob(f"*{_MANIFEST_SUFFIX}")}
        blobs = {p.stem for p in self.root.glob(f"*{_BLOB_SUFFIX}")}
        for stem in sorted(blobs - manifests):
            drop(stem, "orphan-blob")
        survivors: list[StoreEntry] = []
        for stem in sorted(manifests):
            try:
                entry = self.entry(stem)
            except StoreError:
                drop(stem, "unreadable-manifest")
                continue
            blob_path = self._blob_path(stem)
            if not blob_path.is_file():
                drop(stem, "orphan-manifest")
                continue
            if verify:
                blob = blob_path.read_bytes()
                if (len(blob) != entry.size_bytes
                        or blob_token(blob) != stem):
                    drop(stem, "corrupt-blob")
                    continue
            survivors.append(entry)
        if max_entries is not None and len(survivors) > max_entries:
            survivors.sort(key=lambda e: e.created_at, reverse=True)
            for entry in survivors[max_entries:]:
                drop(entry.token, "evicted")
        return removed

    def remove(self, token: str) -> None:
        """Delete one entry (manifest + blob); missing tokens error."""
        if token not in self:
            raise ArtifactNotFoundError(token, str(self.root))
        for path in (self._manifest_path(token), self._blob_path(token)):
            if path.is_file():
                path.unlink()

    def total_bytes(self) -> int:
        """Bytes of blob payload currently stored."""
        return sum(p.stat().st_size
                   for p in self.root.glob(f"*{_BLOB_SUFFIX}"))

    def __repr__(self) -> str:
        return f"<ArtifactStore {self.root} ({len(self)} entries)>"


def store_entry_to_dict(entry: StoreEntry) -> dict[str, Any]:
    """Serialize a manifest (the JSON shape committed to disk)."""
    return entry.to_dict()


def store_entry_from_dict(data: Mapping[str, Any]) -> StoreEntry:
    """Inverse of :func:`store_entry_to_dict`."""
    return StoreEntry.from_dict(data)
