"""Acceptance: the profiling fast path is bit-identical to the legacy
per-view scoring path on the paper's workloads.

``ContextMatchConfig(use_profiling=False)`` forces the legacy
materialize-and-reprofile path; True routes scoring through
:mod:`repro.profiling`.  Matches, scores, confidences — and the full
candidate-rescoring diagnostics — must agree exactly.
"""

import pytest

from repro import ContextMatchConfig, MatchEngine
from repro.context.score import score_family_candidates
from repro.matching import StandardMatch
from repro.profiling import ProfileStore
from repro.relational import View, ViewFamily


def _match_key(m):
    return (m.source, m.target, str(m.condition), m.condition_on,
            m.score, m.confidence)


def _standard_key(m):
    return (m.source, m.target, m.score, m.confidence)


def _candidate_key(c):
    return (c.view.name, c.family.attribute, c.base_match.key(),
            c.rescored.score, c.rescored.confidence, c.view_rows)


def _run(workload, use_profiling, **cfg):
    engine = MatchEngine(ContextMatchConfig(use_profiling=use_profiling,
                                            **cfg))
    return engine.match(workload.source, engine.prepare(workload.target))


@pytest.mark.parametrize("inference", ["src", "tgt"])
def test_retail_equivalence(retail_workload, inference):
    fast = _run(retail_workload, True, inference=inference, seed=5)
    legacy = _run(retail_workload, False, inference=inference, seed=5)
    assert [_match_key(m) for m in fast.matches] \
        == [_match_key(m) for m in legacy.matches]
    assert [_standard_key(m) for m in fast.standard_matches] \
        == [_standard_key(m) for m in legacy.standard_matches]
    assert [_candidate_key(c) for c in fast.candidates] \
        == [_candidate_key(c) for c in legacy.candidates]


def test_grades_equivalence(grades_workload):
    fast = _run(grades_workload, True, inference="tgt", seed=7)
    legacy = _run(grades_workload, False, inference="tgt", seed=7)
    assert fast.matches, "grades workload should produce matches"
    assert [_match_key(m) for m in fast.matches] \
        == [_match_key(m) for m in legacy.matches]
    assert [_candidate_key(c) for c in fast.candidates] \
        == [_candidate_key(c) for c in legacy.candidates]


def test_conjunctive_refinement_equivalence(retail_workload):
    fast = _run(retail_workload, True, inference="src", seed=5,
                conjunctive_stages=2)
    legacy = _run(retail_workload, False, inference="src", seed=5,
                  conjunctive_stages=2)
    assert [_match_key(m) for m in fast.matches] \
        == [_match_key(m) for m in legacy.matches]
    counts = fast.report.stage("conjunctive-refine").counts
    assert counts["iterations"] == 1
    # The refinement stage reports its own stage-scoped cache counters.
    assert "profile_misses" in counts


def test_profiling_run_reports_cache_counters(retail_workload):
    result = _run(retail_workload, True, inference="src", seed=5)
    counts = result.report.stage("score-candidates").counts
    assert counts["profile_misses"] > 0
    assert counts["partitions_built"] > 0
    legacy = _run(retail_workload, False, inference="src", seed=5)
    assert "profile_misses" not in \
        legacy.report.stage("score-candidates").counts


class TestDuplicateViewsAcrossMergedFamilies:
    """Regression: member views shared between a family and its merged
    variants are scored exactly once per relation (``seen_views``)."""

    def _setup(self, figure1_target):
        from repro.matching.standard import AttributeMatch
        from repro.relational import Relation
        from repro.relational.schema import AttributeRef

        matcher = StandardMatch()
        index = matcher.build_target_index(figure1_target)
        relation = Relation.infer_schema("inv2", {
            "name": [f"title {i}" for i in range(12)],
            "cat": ["a", "a", "a", "a", "b", "b", "b", "b",
                    "c", "c", "c", "c"],
        })
        accepted = [AttributeMatch(
            source=AttributeRef("inv2", "name"),
            target=AttributeRef("book", "title"),
            score=0.8, confidence=0.9)]
        return matcher, index, relation, accepted

    @pytest.mark.parametrize("use_store", [False, True])
    def test_shared_singletons_scored_once(self, figure1_target, use_store):
        matcher, index, relation, accepted = self._setup(figure1_target)
        base = ViewFamily.simple("inv2", "cat", ["a", "b", "c"])
        merged = base.merge("a", "b")
        store = (ProfileStore.for_matcher(matcher) if use_store else None)
        seen: set[View] = set()
        first = score_family_candidates(base, relation, accepted, matcher,
                                        index, seen_views=seen, store=store)
        second = score_family_candidates(merged, relation, accepted, matcher,
                                         index, seen_views=seen, store=store)
        # The merged family shares the untouched 'c' singleton with the
        # base family: only its new merged view is scored.
        first_views = {c.view.name for c in first}
        second_views = {c.view.name for c in second}
        assert first_views == {"inv2[cat=a]", "inv2[cat=b]", "inv2[cat=c]"}
        assert second_views == {"inv2[catin(a,b)]"}
        assert second_views.isdisjoint(first_views)
        all_names = [c.view.name for c in first + second]
        assert all(all_names.count(name) == 1 for name in set(all_names))

    def test_duplicate_family_entirely_skipped(self, figure1_target):
        matcher, index, relation, accepted = self._setup(figure1_target)
        family = ViewFamily.simple("inv2", "cat", ["a", "b"])
        seen: set[View] = set()
        first = score_family_candidates(family, relation, accepted, matcher,
                                        index, seen_views=seen)
        again = score_family_candidates(family, relation, accepted, matcher,
                                        index, seen_views=seen)
        assert first
        assert again == []
