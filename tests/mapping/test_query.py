"""Tests for logical tables, mapping queries and Skolem functions."""

import pytest

from repro.errors import MappingError
from repro.mapping import (JoinEdge, LogicalTable, MappingQuery,
                           SelectSource, SkolemFunction)
from repro.relational import DataType, Relation, TableSchema
from repro.relational.schema import AttributeRef


class TestSkolem:
    def test_deterministic(self):
        f = SkolemFunction("f")
        assert f(["a", 1]) == f(["a", 1])

    def test_injective(self):
        f = SkolemFunction("f")
        assert f(["a"]) != f(["b"])

    def test_rendered_form(self):
        f = SkolemFunction("books_format")
        assert f(["x"]).startswith("Sk_books_format(")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            SkolemFunction("")


@pytest.fixture()
def left_relation():
    return Relation.infer_schema("L", {
        "k": [1, 2, 3], "a": ["x", "y", "z"]})


@pytest.fixture()
def right_relation():
    return Relation.infer_schema("R", {
        "k": [1, 2, 4], "b": ["p", "q", "r"]})


def edge(rule="join1"):
    return JoinEdge("L", "R", ("k",), ("k",), rule)


class TestLogicalTable:
    def test_single_relation(self):
        table = LogicalTable(("L",), ())
        assert table.signature() == frozenset({"L"})

    def test_join_arity_checked(self):
        with pytest.raises(MappingError):
            LogicalTable(("L", "R"), ())

    def test_join_must_extend(self):
        bad = JoinEdge("X", "R", ("k",), ("k",), "join1")
        with pytest.raises(MappingError):
            LogicalTable(("L", "R"), (bad,))

    def test_valid_two_table(self):
        table = LogicalTable(("L", "R"), (edge(),))
        assert table.relations == ("L", "R")


class TestMappingQuery:
    def make_query(self):
        target = TableSchema("T", [("key", DataType.INTEGER),
                                   ("left", DataType.STRING),
                                   ("right", DataType.STRING)])
        logical = LogicalTable(("L", "R"), (edge(),))
        select = [
            SelectSource("key", column=AttributeRef("L", "k")),
            SelectSource("left", column=AttributeRef("L", "a")),
            SelectSource("right", column=AttributeRef("R", "b")),
        ]
        return MappingQuery(target, logical, select)

    def test_outer_join_execution(self, left_relation, right_relation):
        query = self.make_query()
        result = query.execute({"L": left_relation, "R": right_relation})
        rows = {r["key"]: r for r in result.rows()}
        assert rows[1]["right"] == "p"
        assert rows[2]["right"] == "q"
        assert rows[3]["right"] is None  # outer join kept the left row

    def test_missing_select_source_rejected(self):
        target = TableSchema("T", [("key", DataType.INTEGER),
                                   ("left", DataType.STRING)])
        logical = LogicalTable(("L",), ())
        with pytest.raises(MappingError):
            MappingQuery(target, logical,
                         [SelectSource("key",
                                       column=AttributeRef("L", "k"))])

    def test_select_outside_logical_table_rejected(self):
        target = TableSchema("T", [("x", DataType.STRING)])
        logical = LogicalTable(("L",), ())
        with pytest.raises(MappingError):
            MappingQuery(target, logical,
                         [SelectSource("x",
                                       column=AttributeRef("Z", "a"))])

    def test_missing_instance_rejected(self, left_relation):
        query = self.make_query()
        with pytest.raises(MappingError):
            query.execute({"L": left_relation})

    def test_skolem_fills_unmapped(self, left_relation):
        target = TableSchema("T", [("key", DataType.INTEGER),
                                   ("extra", DataType.STRING)])
        logical = LogicalTable(("L",), ())
        key_ref = AttributeRef("L", "k")
        select = [
            SelectSource("key", column=key_ref),
            SelectSource("extra", skolem=SkolemFunction("T_extra"),
                         skolem_args=(key_ref,)),
        ]
        query = MappingQuery(target, logical, select)
        result = query.execute({"L": left_relation})
        values = [r["extra"] for r in result.rows()]
        assert len(set(values)) == 3  # one surrogate per key
        assert all(v.startswith("Sk_T_extra(") for v in values)

    def test_union_deduplicates(self):
        target = TableSchema("T", [("a", DataType.STRING)])
        duplicated = Relation.infer_schema("L", {"k": [1, 1], "a": ["x", "x"]})
        logical = LogicalTable(("L",), ())
        query = MappingQuery(target, logical,
                             [SelectSource("a",
                                           column=AttributeRef("L", "a"))])
        assert len(query.execute({"L": duplicated})) == 1

    def test_explain_mentions_sources(self):
        text = self.make_query().explain()
        assert "L.a" in text and "R.b" in text
