"""Columnar-backend benchmark: million-row ingestion, both backends.

Runs the full ingest-profile-match path on a 10⁶-row ingestion workload
(the messy retail feed, CSV round-trip included) twice — once under the
columnar backend, once under the legacy object-list reference — and
records wall-clock and peak RSS for each.  Every measurement runs in its
own subprocess: ``ru_maxrss`` is a monotonic per-process high-water
mark, so the two backends can only be compared from isolated processes.

Three phases are timed per backend:

* ``build``: scenario construction — datagen, messy-feed rendering, the
  streaming CSV round-trip and normalization (both backends pay the same
  datagen cost; the CSV reader lands in typed stores vs plain lists);
* ``profile_classify``: the profile/classify path over the full-size
  source relation — presence masks, non-missing projections, attribute
  samples, the categorical test, partition indexes and value counts.
  This is the path the columnar stores accelerate; the headline floor
  (``MIN_SPEEDUP``, full scale only) asserts columnar is at least 2x
  the object-list reference here;
* ``prepare_match``: end-to-end engine prepare + match, recorded for
  the wall-clock trajectory (sampling bounds this phase, so it is not
  where the floor applies).

Results are persisted as ``results/BENCH_columnar.json``.  Set
``BENCH_TINY=1`` for a seconds-scale smoke run (CI): schema and
cross-backend equivalence checks still apply, the speedup floor and the
10⁶-row guarantee do not.
"""

import json
import os
import pathlib
import subprocess
import sys

from conftest import BENCH_TINY, bench_scenario, run_once

from repro.datagen import ScenarioSpec
from repro.relational import BACKENDS

MIN_SPEEDUP = 2.0
REPO_ROOT = pathlib.Path(__file__).parent.parent

#: The ingestion family at bench scale: 10⁶ source rows arrive as a
#: messy CSV feed and are normalized before matching.
SPEC = bench_scenario(
    ScenarioSpec(name="columnar-ingest", family="ingestion", seed=17,
                 gamma=2),
    tiny_size=2000, full_size=1_000_000,
    tiny_target=100, full_target=2000)

#: Per-backend measurement driver.  Runs as ``python -c`` in a fresh
#: process (argv[1] = scenario spec JSON; REPRO_RELATION_BACKEND set by
#: the parent) and reports one JSON line on stdout.
_CHILD_SCRIPT = """
import json, resource, sys, time

from repro import ContextMatchConfig, MatchEngine
from repro.context.categorical import categorical_attributes
from repro.datagen import ScenarioSpec, build_scenario
from repro.matching.matchers.base import AttributeSample
from repro.profiling import PartitionIndex
from repro.relational import default_backend

spec = ScenarioSpec.from_dict(json.loads(sys.argv[1]))

t0 = time.perf_counter()
workload = build_scenario(spec)
build_seconds = time.perf_counter() - t0

relation = max(workload.source, key=len)
t0 = time.perf_counter()
for attribute in relation.schema:
    relation.presence_array(attribute.name)
    relation.non_missing(attribute.name)
    AttributeSample.from_relation(relation, attribute)
for attr in categorical_attributes(relation):
    PartitionIndex(relation, attr).n_cells
    relation.value_counts(attr)
profile_seconds = time.perf_counter() - t0

engine = MatchEngine(ContextMatchConfig(inference="src"))
t0 = time.perf_counter()
prepared = engine.prepare(workload.target)
source = engine.prepare_source(workload.source)
result = engine.match(source, prepared)
match_seconds = time.perf_counter() - t0

print(json.dumps({
    "backend": default_backend(),
    "n_rows": len(relation),
    "build_seconds": build_seconds,
    "profile_classify_seconds": profile_seconds,
    "prepare_match_seconds": match_seconds,
    "n_matches": len(result.matches),
    "peak_rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    / 1024.0,
}))
"""


def _measure(backend: str) -> dict:
    env = dict(os.environ)
    env["REPRO_RELATION_BACKEND"] = backend
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, json.dumps(SPEC.to_dict())],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT, check=False)
    assert proc.returncode == 0, (
        f"{backend} measurement child failed:\n{proc.stderr}")
    payload = json.loads(proc.stdout.strip().splitlines()[-1])
    assert payload["backend"] == backend
    return payload


def test_columnar_million_row_ingestion(benchmark, record_series,
                                        record_json):
    runs = {}
    for backend in BACKENDS:
        if backend == "columnar":
            runs[backend] = run_once(benchmark, _measure, backend)
        else:
            runs[backend] = _measure(backend)

    columnar, legacy = runs["columnar"], runs["legacy"]
    assert columnar["n_rows"] == legacy["n_rows"] == SPEC.size
    # Storage is a representation change, not a semantics change.
    assert columnar["n_matches"] == legacy["n_matches"]

    speedup = (legacy["profile_classify_seconds"]
               / columnar["profile_classify_seconds"])

    record_series(
        "columnar_storage",
        f"Columnar vs object-list storage "
        f"({SPEC.size} ingested source rows)",
        "measurement",
        {phase: {mode: runs[mode][key] for mode in runs}
         for phase, key in (
             ("build_seconds", "build_seconds"),
             ("profile_classify_seconds", "profile_classify_seconds"),
             ("prepare_match_seconds", "prepare_match_seconds"),
             ("peak_rss_mb", "peak_rss_mb"))},
        list(runs))
    record_json("BENCH_columnar", {
        "benchmark": "bench_columnar",
        "config": {"scenario": SPEC.to_dict(), "tiny": BENCH_TINY},
        "n_rows": SPEC.size,
        "modes": runs,
        "speedup": {"profile_classify_columnar_vs_legacy": speedup},
    })

    if not BENCH_TINY:
        assert SPEC.size == 1_000_000
        assert speedup >= MIN_SPEEDUP, (
            f"columnar profile/classify should be >= {MIN_SPEEDUP}x the "
            f"object-list reference, got {speedup:.2f}x")
