"""Plain-text rendering of experiment results.

Benchmarks print the same rows/series the paper's figures plot; these
helpers keep that output consistent and diffable (EXPERIMENTS.md quotes
them verbatim).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    rendered_rows = [[_render(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title: str, xlabel: str,
                  data: Mapping[object, Mapping[str, float]],
                  series: Sequence[str]) -> str:
    """One row per x value, one column per series — a figure as a table."""
    headers = [xlabel] + list(series)
    rows = []
    for x in data:
        row = [x] + [data[x].get(s, float("nan")) for s in series]
        rows.append(row)
    return format_table(headers, rows, title=title)


def _render(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.1f}"
    return str(cell)
