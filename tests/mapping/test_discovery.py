"""Tests for constraint mining from sample data."""

import pytest

from repro.mapping import (discover_constraints, discover_foreign_keys,
                           discover_keys)
from repro.relational import Database, ForeignKey, Key, Relation


@pytest.fixture()
def school() -> Database:
    """Example 4.1's student/project schema with sample data."""
    student = Relation.infer_schema("student", {
        "name": ["ann", "bob", "cat"],
        "email": ["a@x", "b@x", "c@x"],
    })
    project = Relation.infer_schema("project", {
        "name": ["ann", "ann", "bob", "cat"],
        "assignt": [0, 1, 0, 0],
        "grade": ["A", "B", "B", "C"],
    })
    return Database.from_relations("school", [student, project])


class TestDiscoverKeys:
    def test_single_attribute_keys(self, school):
        keys = discover_keys(school.relation("student"), max_width=1)
        assert Key("student", ("name",)) in keys
        assert Key("student", ("email",)) in keys

    def test_composite_key_found(self, school):
        keys = discover_keys(school.relation("project"))
        assert Key("project", ("name", "assignt")) in keys

    def test_minimal_only_skips_supersets(self, school):
        keys = discover_keys(school.relation("student"), max_width=2)
        assert Key("student", ("name", "email")) not in keys

    def test_non_minimal_mode(self, school):
        keys = discover_keys(school.relation("student"), max_width=2,
                             minimal_only=False)
        assert Key("student", ("name", "email")) in keys

    def test_invalid_width(self, school):
        with pytest.raises(ValueError):
            discover_keys(school.relation("student"), max_width=0)

    def test_non_key_not_reported(self, school):
        keys = discover_keys(school.relation("project"), max_width=1)
        assert Key("project", ("name",)) not in keys


class TestDiscoverForeignKeys:
    def test_inclusion_found(self, school):
        fks = discover_foreign_keys(school)
        assert ForeignKey("project", ("name",),
                          "student", ("name",)) in fks

    def test_no_reverse_inclusion(self, school):
        # student.email values are not project values anywhere.
        fks = discover_foreign_keys(school)
        assert not any(fk.child == "student" and
                       fk.child_attributes == ("email",) for fk in fks)

    def test_type_compatibility_required(self, school):
        fks = discover_foreign_keys(school)
        for fk in fks:
            child = school.relation(fk.child)
            parent = school.relation(fk.parent)
            ct = child.schema.dtype(fk.child_attributes[0])
            pt = parent.schema.dtype(fk.parent_attributes[0])
            assert ct.compatible_with(pt)


class TestDiscoverConstraints:
    def test_returns_both(self, school):
        keys, fks = discover_constraints(school)
        assert any(k.table == "student" for k in keys)
        assert any(fk.child == "project" for fk in fks)
