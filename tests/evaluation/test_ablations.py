"""Ablation tests for the calibrated design choices of DESIGN.md §7.

Each test disables one mechanism and shows the failure mode it guards
against — executable documentation of why the mechanism exists.
"""

import pytest

from repro import ContextMatch, ContextMatchConfig
from repro.evaluation import evaluate_result
from repro.matching import StandardMatch, StandardMatchConfig


class TestScoreFloorAblation:
    """DESIGN.md §7.1: acceptance needs absolute evidence."""

    def test_no_floor_admits_more_junk(self, retail_workload):
        with_floor = StandardMatch(StandardMatchConfig(score_floor=0.25))
        without = StandardMatch(StandardMatchConfig(score_floor=0.0))
        accepted_with = with_floor.match(retail_workload.source,
                                         retail_workload.target, tau=0.5)
        accepted_without = without.match(retail_workload.source,
                                         retail_workload.target, tau=0.5)
        assert len(accepted_without) > len(accepted_with)
        # Everything the floor admits, the no-floor config admits too.
        assert {m.key() for m in accepted_with} <= \
            {m.key() for m in accepted_without}

    def test_floored_junk_is_weak(self, retail_workload):
        """Pairs removed by the floor are exactly the low-score ones."""
        without = StandardMatch(StandardMatchConfig(score_floor=0.0))
        accepted = without.match(retail_workload.source,
                                 retail_workload.target, tau=0.5)
        floored_out = [m for m in accepted if m.score < 0.25]
        assert floored_out, "the floor must actually be load-bearing"


class TestOmegaAblation:
    """DESIGN.md §7.3: ω separates semantic from random conditions."""

    def test_zero_omega_hurts_precision(self, retail_workload):
        def run(omega):
            config = ContextMatchConfig(inference="naive", omega=omega,
                                        early_disjuncts=False, seed=5)
            result = ContextMatch(config).run(retail_workload.source,
                                              retail_workload.target)
            return evaluate_result(result, retail_workload.ground_truth)

        permissive = run(0.0)
        default = run(5.0)
        assert permissive.n_found >= default.n_found
        assert permissive.precision <= default.precision + 1e-9


class TestSignificanceAblation:
    """DESIGN.md: the well-clustered test filters spurious families."""

    def test_lower_threshold_admits_more_families(self, retail_workload):
        def families(threshold):
            config = ContextMatchConfig(inference="src",
                                        significance_threshold=threshold,
                                        seed=5)
            result = ContextMatch(config).run(retail_workload.source,
                                              retail_workload.target)
            return {(f.table, f.attribute, f.groups)
                    for f in result.families}

        strict = families(0.999)
        loose = families(0.5)
        assert strict <= loose
        assert len(loose) >= len(strict)


class TestSampleCapAblation:
    """DESIGN.md §7.5: the significance test runs on modest partitions."""

    def test_smaller_caps_weaken_high_sigma_inference(self):
        """At σ=25 the default caps still find the exam views; tiny caps
        lose them — the knee of Figure 19/21 moves with the cap."""
        from repro.evaluation.experiments import run_grades
        from repro.evaluation.runner import seed_pairs, summarize

        def accuracy(caps):
            values = []
            for wseed, pseed in seed_pairs(3):
                config = ContextMatchConfig(
                    inference="src", early_disjuncts=False, seed=pseed,
                    max_train=caps, max_test=caps)
                metrics, _ = run_grades(25.0, config, workload_seed=wseed)
                values.append(metrics.accuracy)
            return summarize(values).mean

        assert accuracy(250) > accuracy(100)


class TestSampleSizeAblation:
    """DESIGN.md §7 context: Figure 14's slope steepens on small samples."""

    def test_small_samples_degrade_high_gamma(self):
        from repro.evaluation.experiments import run_retail
        config = ContextMatchConfig(inference="src", early_disjuncts=False,
                                    seed=5)
        small_high_gamma, _ = run_retail("ryan", config, workload_seed=11,
                                         gamma=10, n_source=300)
        large_high_gamma, _ = run_retail("ryan", config, workload_seed=11,
                                         gamma=10, n_source=1000)
        assert small_high_gamma.fmeasure <= large_high_gamma.fmeasure + 1e-9
