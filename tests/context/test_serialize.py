"""Tests for match/condition JSON serialization."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.context import (attribute_match_from_dict, attribute_match_to_dict,
                           condition_from_dict, condition_to_dict,
                           config_from_dict, config_to_dict, match_from_dict,
                           match_to_dict, report_from_dict, report_to_dict,
                           result_from_dict, result_to_dict)
from repro.context.model import ContextMatchConfig, ContextualMatch, MatchResult
from repro.engine import RunReport, StageReport
from repro.errors import ConditionError
from repro.matching import StandardMatchConfig
from repro.matching.standard import AttributeMatch
from repro.relational import TRUE, And, Eq, In, Or, View
from repro.relational.schema import AttributeRef


CONDITIONS = [
    TRUE,
    Eq("type", 1),
    Eq("name", "o'hara"),
    In("type", [1, 2, 3]),
    And.of(Eq("a", 1), Eq("b", "x")),
    Or.of(Eq("a", 1), In("b", ["p", "q"])),
    And.of(Or.of(Eq("a", 1), Eq("a", 2)), Eq("c", True)),
]


class TestConditionRoundTrip:
    @pytest.mark.parametrize("condition", CONDITIONS, ids=str)
    def test_round_trip(self, condition):
        encoded = condition_to_dict(condition)
        json.dumps(encoded)  # must be JSON-compatible
        assert condition_from_dict(encoded) == condition

    def test_unknown_op_rejected(self):
        with pytest.raises(ConditionError):
            condition_from_dict({"op": "xor"})

    @given(st.sets(st.integers(0, 9), min_size=1, max_size=5))
    def test_in_round_trip_property(self, values):
        condition = In("a", list(values))
        assert condition_from_dict(condition_to_dict(condition)) == condition


class TestMatchRoundTrip:
    def make_match(self, condition, condition_on="source"):
        view = None
        if not condition.is_true():
            base = "items" if condition_on == "source" else "books"
            view = View(base, condition)
        return ContextualMatch(
            source=AttributeRef("items", "Name"),
            target=AttributeRef("books", "title"),
            condition=condition, score=0.81, confidence=0.93,
            view=view, condition_on=condition_on)

    def test_contextual_round_trip(self):
        match = self.make_match(In("ItemType", ["B1", "B2"]))
        restored = match_from_dict(match_to_dict(match))
        assert restored == match

    def test_standard_round_trip(self):
        match = self.make_match(TRUE)
        restored = match_from_dict(match_to_dict(match))
        assert restored.view is None
        assert restored == match

    def test_target_side_round_trip(self):
        match = self.make_match(Eq("format", "hardcover"),
                                condition_on="target")
        restored = match_from_dict(match_to_dict(match))
        assert restored.condition_on == "target"
        assert restored.view.base == "books"

    def test_dict_is_json_compatible(self):
        match = self.make_match(Eq("ItemType", "Book"))
        text = json.dumps(match_to_dict(match))
        assert "ItemType" in text


def make_report() -> RunReport:
    return RunReport(
        stages=[StageReport("standard-match", 0.25, {"accepted": 7}),
                StageReport("select", 0.01, {"selected": 3})],
        elapsed_seconds=0.5, target_prepared=True)


class TestResultSerialization:
    def test_result_to_dict(self):
        match = ContextualMatch(
            source=AttributeRef("items", "Name"),
            target=AttributeRef("books", "title"),
            condition=TRUE, score=0.5, confidence=0.6)
        result = MatchResult(matches=[match], elapsed_seconds=1.5)
        data = result_to_dict(result)
        assert data["elapsed_seconds"] == 1.5
        assert len(data["matches"]) == 1
        assert data["report"] is None
        json.dumps(data)

    def test_result_round_trip(self):
        match = ContextualMatch(
            source=AttributeRef("items", "Name"),
            target=AttributeRef("books", "title"),
            condition=Eq("ItemType", "Book"), score=0.8, confidence=0.9,
            view=View("items", Eq("ItemType", "Book")))
        standard = AttributeMatch(
            source=AttributeRef("items", "Name"),
            target=AttributeRef("books", "title"),
            score=0.7, confidence=0.8)
        result = MatchResult(matches=[match], standard_matches=[standard],
                             elapsed_seconds=1.5, report=make_report())
        encoded = result_to_dict(result)
        json.dumps(encoded)
        restored = result_from_dict(encoded)
        assert restored.matches == result.matches
        assert restored.standard_matches == result.standard_matches
        assert restored.elapsed_seconds == result.elapsed_seconds
        assert restored.report == result.report
        # Families/candidates are in-memory diagnostics; only their counts
        # serialize, and re-encoding is stable for everything serialized.
        assert result_to_dict(restored)["matches"] == encoded["matches"]
        assert (result_to_dict(restored)["standard_matches"]
                == encoded["standard_matches"])
        assert result_to_dict(restored)["report"] == encoded["report"]

    def test_result_from_dict_tolerates_old_payloads(self):
        """Payloads written before standard_matches/report existed load."""
        restored = result_from_dict({"matches": [], "elapsed_seconds": 2.0})
        assert restored.matches == []
        assert restored.standard_matches == []
        assert restored.report is None


class TestAttributeMatchRoundTrip:
    def test_round_trip(self):
        match = AttributeMatch(
            source=AttributeRef("items", "Code"),
            target=AttributeRef("books", "isbn"),
            score=0.55, confidence=0.72)
        encoded = attribute_match_to_dict(match)
        json.dumps(encoded)
        assert attribute_match_from_dict(encoded) == match


class TestReportRoundTrip:
    def test_round_trip(self):
        report = make_report()
        encoded = report_to_dict(report)
        json.dumps(encoded)
        assert report_from_dict(encoded) == report

    def test_reversed_flag_round_trips(self):
        report = RunReport(role_reversed=True)
        assert report_from_dict(report_to_dict(report)).role_reversed

    def test_float_counts_survive(self):
        """Ratio diagnostics like ``retrieval_recall`` must round-trip as
        floats; integral counts stay ints."""
        report = RunReport(stages=[StageReport(
            name="score-candidates", elapsed_seconds=0.1,
            counts={"candidates": 42, "retrieval_recall": 0.75,
                    "pairs_pruned": 0})])
        counts = report_from_dict(report_to_dict(report)) \
            .stage("score-candidates").counts
        assert counts["retrieval_recall"] == 0.75
        assert counts["candidates"] == 42
        assert isinstance(counts["candidates"], int)


class TestConfigRoundTrip:
    def test_round_trip(self):
        config = ContextMatchConfig(
            tau=0.4, omega=8.0, inference="src", selection="multitable",
            early_disjuncts=False, seed=9,
            standard=StandardMatchConfig(sample_limit=100,
                                         use_name_evidence=False))
        encoded = config_to_dict(config)
        json.dumps(encoded)
        assert config_from_dict(encoded) == config

    def test_partial_dict_takes_defaults(self):
        config = config_from_dict({"tau": 0.7})
        assert config.tau == 0.7
        assert config.omega == 5.0
        assert config.standard == StandardMatchConfig()

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            config_from_dict({"bogus": 1})

    def test_validation_still_applies(self):
        with pytest.raises(ValueError):
            config_from_dict({"tau": 3.0})


class TestCliJson:
    def test_match_json_flag(self, tmp_path, capsys):
        from repro.cli import main
        out = tmp_path / "wl"
        main(["generate", "retail", str(out), "--rows", "200",
              "--gamma", "2", "--seed", "3"])
        capsys.readouterr()
        rc = main(["match", str(out / "src"), str(out / "tgt"),
                   "--inference", "src", "--seed", "2", "--json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches"]
        assert any(m["condition"]["op"] != "true"
                   for m in payload["matches"])
