"""Pickle round-trip grid for prepared artifacts.

The process executor backend ships :class:`PreparedTarget` /
:class:`PreparedSource` to worker pools, so both must survive
``pickle.dumps`` / ``loads`` for every scenario family and produce
bit-identical match results afterwards — including the lazily-compiled
classifier state (Naive Bayes log-probability matrices, Gaussian fits),
which is deliberately dropped from the payload and rebuilt post-load.
"""

import dataclasses
import pickle

import pytest

from repro import ContextMatchConfig, MatchEngine
from repro.classifiers.naive_bayes import NaiveBayesClassifier
from repro.classifiers.numeric import GaussianClassifier
from repro.datagen import build_scenario, get_scenario
from repro.profiling import PartitionIndex

#: One base scenario per family, shrunk so the grid stays seconds-fast.
FAMILY_SCENARIOS = ("retail", "grades", "clinical", "events", "realestate")


@pytest.fixture(scope="module")
def family_workloads():
    return {name: build_scenario(get_scenario(name).resized(80))
            for name in FAMILY_SCENARIOS}


def _engine_for(name, **overrides):
    spec = get_scenario(name)
    resolved = dict(spec.config_overrides())
    resolved.update(overrides)
    return MatchEngine(dataclasses.replace(ContextMatchConfig(), **resolved))


def _assert_results_identical(expected, actual):
    assert expected.matches == actual.matches
    assert expected.standard_matches == actual.standard_matches
    expected_counts = [s.counts for s in expected.report.stages]
    actual_counts = [s.counts for s in actual.report.stages]
    for want, got in zip(expected_counts, actual_counts):
        for key, value in want.items():
            if key.startswith("token_cache"):
                continue  # process-global telemetry, not per-run state
            assert got.get(key) == value, key


@pytest.mark.parametrize("name", FAMILY_SCENARIOS)
class TestPreparedTargetRoundTrip:
    def test_cold_round_trip_is_bit_identical(self, family_workloads, name):
        """Pickle straight after prepare(): no classifier trained yet."""
        workload = family_workloads[name]
        engine = _engine_for(name)
        prepared = engine.prepare(workload.target)
        restored = pickle.loads(pickle.dumps(prepared))
        expected = engine.match(workload.source, prepared)
        worker = MatchEngine(engine.config, matcher=restored.matcher,
                             policy=engine.policy)
        _assert_results_identical(expected,
                                  worker.match(workload.source, restored))

    def test_warm_round_trip_rebuilds_lazy_classifier_state(
            self, family_workloads, name):
        """Pickle after a run: trained classifiers travel, compiled
        matrices/fits do not — they are invalidated and rebuilt post-load,
        still bit-identically.  ``tgt`` inference forces the target
        classifier set (and its compiled state) into existence."""
        workload = family_workloads[name]
        engine = _engine_for(name, inference="tgt")
        prepared = engine.prepare(workload.target)
        cold = engine.match(workload.source, prepared)
        assert prepared.target_classifiers is not None  # trained by the run
        # Warm reference: a second run against the now-warm tag cache —
        # the shipped artifact carries that cache, so its counts must
        # reproduce this run, and its matches all three.
        expected = engine.match(workload.source, prepared)
        assert expected.matches == cold.matches

        restored = pickle.loads(pickle.dumps(prepared))
        restored_set = restored.target_classifiers
        assert restored_set is not None
        compiled_seen = fitted_seen = 0
        for classifier in restored_set._classifiers.values():
            if isinstance(classifier, NaiveBayesClassifier):
                compiled_seen += 1
                assert classifier._compiled is None
                assert classifier._gram_ids == {}
            elif isinstance(classifier, GaussianClassifier):
                fitted_seen += 1
                assert classifier._fitted is None
                assert classifier._terms is None
        assert compiled_seen + fitted_seen > 0
        assert restored.tag_cache == prepared.tag_cache

        worker = MatchEngine(engine.config, matcher=restored.matcher,
                             policy=engine.policy)
        _assert_results_identical(expected,
                                  worker.match(workload.source, restored))


@pytest.mark.parametrize("name", FAMILY_SCENARIOS)
def test_prepared_source_round_trip(family_workloads, name):
    """A populated PreparedSource (profiles + partitions) round-trips and
    keeps serving bit-identical cached scores."""
    workload = family_workloads[name]
    engine = _engine_for(name)
    prepared_target = engine.prepare(workload.target)
    prepared_source = engine.prepare_source(workload.source)
    cold = engine.match(prepared_source, prepared_target)
    assert len(prepared_source.store) > 0
    # Warm reference: a second run over the now-populated store, whose
    # cache counters the shipped store must reproduce.
    expected = engine.match(prepared_source, prepared_target)
    assert expected.matches == cold.matches

    restored = pickle.loads(pickle.dumps(prepared_source))
    assert len(restored.store) == len(prepared_source.store)
    assert restored.store.matcher_names == prepared_source.store.matcher_names
    hits_before = restored.store.profile_hits
    worker = MatchEngine(engine.config, matcher=restored.matcher,
                         policy=engine.policy)
    again = worker.match(restored, engine.prepare(workload.target))
    _assert_results_identical(expected, again)
    # The shipped store still serves its cached profiles.
    assert restored.store.profile_hits > hits_before


def test_partition_index_round_trip(family_workloads):
    """The index pickles its cells and rebuilds its numpy arrays / memos
    lazily, producing identical restricted columns."""
    source = family_workloads["retail"].source
    relation = next(iter(source))
    categorical = min(relation.schema.attribute_names,
                      key=lambda a: len(set(relation.column(a))))
    index = PartitionIndex(relation, categorical)
    group = frozenset(list(index.cells)[:2])
    expected = index.restricted_present_column(
        relation.schema.attribute_names[0], group)

    restored = pickle.loads(pickle.dumps(index))
    assert restored.cells == index.cells
    assert restored._group_arrays == {} and restored._present == {}
    assert restored.restricted_present_column(
        relation.schema.attribute_names[0], group) == expected


def test_naive_bayes_round_trip_posteriors_exact():
    nb = NaiveBayesClassifier(q=3)
    values = ["alpha", "beta", "gamma", "alphabet", "betamax", "gamut"]
    labels = ["a", "b", "g", "a", "b", "g"]
    nb.teach_many(values, labels)
    nb.classify_many(values)  # compile
    assert nb._compiled is not None
    restored = pickle.loads(pickle.dumps(nb))
    assert restored._compiled is None  # lazy state dropped
    probe = values + ["delta", "al", "be"]
    assert restored.classify_many(probe) == nb.classify_many(probe)
    for value in probe:
        assert restored.log_posteriors(value) == nb.log_posteriors(value)


def test_gaussian_round_trip_posteriors_exact():
    gaussian = GaussianClassifier()
    for i, value in enumerate([1.0, 1.5, 2.0, 10.0, 11.0, 12.5]):
        gaussian.teach(value, "low" if i < 3 else "high")
    gaussian.classify_many([1.2, 10.5])  # fit + cache posterior terms
    assert gaussian._terms is not None
    restored = pickle.loads(pickle.dumps(gaussian))
    assert restored._fitted is None and restored._terms is None
    probe = [0.5, 1.7, 9.9, 11.1, "not-a-number"]
    assert restored.classify_many(probe) == gaussian.classify_many(probe)
    for value in probe:
        assert restored.log_posteriors(value) == gaussian.log_posteriors(value)
