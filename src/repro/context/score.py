"""Re-scoring prototype matches against candidate views — ``ScoreMatch``
(Figure 5, lines 6-11).

For each candidate view ``Vc`` the sample of the base table is restricted by
``c`` and every accepted prototype match from that table is re-evaluated by
the (black-box) standard matcher.  Confidences are re-normalized against the
distribution of the restricted sample's scores across all target attributes,
exactly as the strawman discussion prescribes ("estimated using the new
score s'_i and the distribution of scores seen for RS.s across the sample").

Two equivalent execution paths exist:

* the legacy per-view path materializes each view via ``View.evaluate``
  and re-profiles its columns from raw values (``store=None``);
* the partition-once fast path (``store`` given) buckets the base rows by
  the family's categorical attribute exactly once
  (:class:`~repro.profiling.PartitionIndex`), derives every member view's
  column samples from partition cells, and reuses cached
  :class:`~repro.profiling.ColumnProfile` objects — composing merged-group
  profiles from cell profiles where the matchers are additive.

The fast path is bit-identical to the legacy one: the same rows in the same
order feed the same deterministic sampling and scoring.  The equivalence is
pinned by tests and switchable via ``ContextMatchConfig.use_profiling``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..matching.standard import AttributeMatch, MatchingSystem, TargetIndex
from ..relational.instance import Relation
from ..relational.views import View, ViewFamily
from .model import CandidateScore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..profiling import ProfileStore
    from ..retrieval import ScoringFrontier

__all__ = ["score_view_candidates", "score_family_candidates"]


def _accepted_by_attribute(accepted: Sequence[AttributeMatch],
                           base_name: str) -> dict[str, list[AttributeMatch]]:
    """The base table's accepted prototype matches grouped by attribute."""
    by_attr: dict[str, list[AttributeMatch]] = {}
    for match in accepted:
        if match.source.table == base_name:
            by_attr.setdefault(match.source.attribute, []).append(match)
    return by_attr


def _pair_candidates(view: View, family: ViewFamily,
                     matches: Sequence[AttributeMatch],
                     scored: Sequence[AttributeMatch],
                     view_rows: int) -> list[CandidateScore]:
    """Join one attribute's rescorings back to its prototype matches."""
    by_target = {(m.target.table, m.target.attribute): m for m in scored}
    results: list[CandidateScore] = []
    for match in matches:
        rescored = by_target.get((match.target.table, match.target.attribute))
        if rescored is None:
            continue
        results.append(CandidateScore(
            view=view, family=family, base_match=match,
            rescored=rescored, view_rows=view_rows))
    return results


def _frontier_positions(frontier: "ScoringFrontier | None",
                        attr_name: str) -> tuple[int, ...] | None:
    """The target subset to rescore *attr_name* against (None = all)."""
    if frontier is None:
        return None
    return frontier.positions_for(attr_name)


def score_view_candidates(view: View, family: ViewFamily, base: Relation,
                          accepted: Sequence[AttributeMatch],
                          matcher: MatchingSystem, index: TargetIndex,
                          *, min_view_rows: int = 2,
                          frontier: "ScoringFrontier | None" = None,
                          ) -> list[CandidateScore]:
    """Evaluate one candidate view against the accepted matches of its base.

    Returns one :class:`CandidateScore` per (view, prototype match) pair —
    the entries added to RL.  Views whose restricted sample is smaller than
    ``min_view_rows`` are skipped: they cannot be scored meaningfully.
    With a :class:`~repro.retrieval.ScoringFrontier` each attribute is
    rescored only against its retrieved target positions.
    """
    restricted = view.evaluate(base)
    if len(restricted) < min_view_rows:
        return []
    by_attr = _accepted_by_attribute(accepted, base.name)
    results: list[CandidateScore] = []
    for attr_name, matches in by_attr.items():
        attribute = restricted.schema.attribute(attr_name)
        positions = _frontier_positions(frontier, attr_name)
        if positions is None:
            scored = matcher.score_attribute(
                view.name, restricted.column(attr_name), attribute, index)
        else:
            scored = matcher.score_attribute(
                view.name, restricted.column(attr_name), attribute, index,
                positions=positions)
        results.extend(_pair_candidates(view, family, matches, scored,
                                        len(restricted)))
    return results


def _score_group_candidates(view: View, group: frozenset,
                            family: ViewFamily, base: Relation,
                            by_attr: dict[str, list[AttributeMatch]],
                            matcher: MatchingSystem, index: TargetIndex,
                            store: "ProfileStore", min_view_rows: int,
                            frontier: "ScoringFrontier | None" = None,
                            ) -> list[CandidateScore]:
    """Partition-once scoring of one member view (fast path)."""
    partition = store.partition(base, family.attribute)
    view_rows = partition.group_size(group)
    if view_rows < min_view_rows:
        return []
    results: list[CandidateScore] = []
    for attr_name, matches in by_attr.items():
        profile = store.view_profile(base, family.attribute, group, attr_name)
        positions = _frontier_positions(frontier, attr_name)
        if positions is None:
            scored = matcher.score_column_profile(profile, index)
        else:
            scored = matcher.score_column_profile(profile, index,
                                                  positions=positions)
        results.extend(_pair_candidates(view, family, matches, scored,
                                        view_rows))
    return results


def score_family_candidates(family: ViewFamily, base: Relation,
                            accepted: Sequence[AttributeMatch],
                            matcher: MatchingSystem, index: TargetIndex,
                            *, min_view_rows: int = 2,
                            seen_views: set[View] | None = None,
                            store: "ProfileStore | None" = None,
                            frontier: "ScoringFrontier | None" = None,
                            ) -> list[CandidateScore]:
    """Score every member view of a family (the loop body of Figure 5).

    Distinct families frequently share member views (a merged family keeps
    the singleton views it did not merge), so callers pass ``seen_views``
    to score each distinct view exactly once — duplicates would otherwise
    inflate the per-view confidence totals used by ``QualTable``.

    With a :class:`~repro.profiling.ProfileStore` (and a matching system
    that opts in via ``supports_profile_store``) the member views are
    scored from one shared partition of the base relation instead of being
    individually materialized; results are bit-identical either way.

    A :class:`~repro.retrieval.ScoringFrontier` (built per relation by the
    scoring stage) restricts each attribute's rescoring to its retrieved
    target positions and tallies considered/pruned pair counts; None — or
    a counting-only frontier — keeps the exhaustive behaviour.
    """
    use_store = (store is not None
                 and getattr(matcher, "supports_profile_store", False)
                 and family.table == base.name)
    by_attr = (_accepted_by_attribute(accepted, base.name)
               if use_store else None)
    results: list[CandidateScore] = []
    for group, view in zip(family.groups, family.views()):
        if seen_views is not None:
            if view in seen_views:
                continue
            seen_views.add(view)
        if use_store:
            results.extend(_score_group_candidates(
                view, group, family, base, by_attr, matcher, index,
                store, min_view_rows, frontier))
        else:
            results.extend(score_view_candidates(
                view, family, base, accepted, matcher, index,
                min_view_rows=min_view_rows, frontier=frontier))
    return results
