"""Matcher interface (paper Section 2.3).

The standard matching system "employs a variety of matching algorithms,
referred to as *matchers*, to compute similarity scores between a pair of
attributes".  A :class:`Matcher` sees an :class:`AttributeSample` — the
attribute plus the bag of values from the current sample — for each side and
returns a raw similarity in ``[0, 1]``.

To keep re-scoring of view-restricted samples cheap (``ScoreMatch`` is
called once per candidate view per match), matchers expose a two-phase API:
:meth:`Matcher.profile` digests a sample into a reusable profile (target
profiles are cached by :class:`~repro.matching.standard.StandardMatch`),
and :meth:`Matcher.score_profiles` compares two profiles.

Matchers whose profiles are *additive* — token, n-gram or value counts,
where the profile of a union of disjoint samples is a pure function of the
member profiles — additionally set :attr:`Matcher.mergeable` and implement
:meth:`Matcher.merge_profiles`.  The profiling subsystem
(:mod:`repro.profiling`) uses the hook to compose the profile of a merged
view (a union of partition cells) from cached cell profiles without
touching raw rows.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Any, Sequence

from ...relational.schema import Attribute
from ...relational.types import is_missing
from ...sampling import systematic_thin

__all__ = ["AttributeSample", "Matcher"]


@dataclasses.dataclass(frozen=True)
class AttributeSample:
    """An attribute together with the bag of values ``v(R.a)`` from the
    current sample (missing values already removed)."""

    table: str
    attribute: Attribute
    values: tuple[Any, ...]

    @classmethod
    def from_column(cls, table: str, attribute: Attribute,
                    values: Sequence[Any], *, limit: int | None = None) -> "AttributeSample":
        clean = [v for v in values if not is_missing(v)]
        if limit is not None:
            clean = systematic_thin(clean, limit)
        return cls(table, attribute, tuple(clean))

    @classmethod
    def from_relation(cls, relation: "Any", attribute: Attribute, *,
                      limit: int | None = None) -> "AttributeSample":
        """Sample one relation column — semantically identical to
        ``from_column(relation.name, attribute, relation.column(...))`` but
        the missing-value filter runs on the typed column store, so the
        full column is never materialized as Python objects."""
        clean = relation.non_missing(attribute.name)
        if limit is not None:
            clean = systematic_thin(clean, limit)
        return cls(relation.name, attribute, tuple(clean))

    @property
    def name(self) -> str:
        return self.attribute.name

    def __len__(self) -> int:
        return len(self.values)


class Matcher(abc.ABC):
    """A single similarity algorithm over attribute pairs.

    Subclasses define :attr:`name`, :attr:`weight` (relative voice in the
    combined confidence, Section 2.3), :meth:`applicable`,
    :meth:`profile` and :meth:`score_profiles`.
    """

    #: Unique short identifier, used in explanations and weighting tables.
    name: str = "matcher"
    #: Relative weight when combining matcher confidences.
    weight: float = 1.0
    #: True when :meth:`merge_profiles` composes the profile of a union of
    #: disjoint samples exactly (bit-identically) from the member profiles.
    #: Requires profiles independent of value order and of the sample's
    #: table name.
    mergeable: bool = False

    def applicable(self, source: AttributeSample, target: AttributeSample) -> bool:
        """Whether this matcher produces a meaningful score for the pair.

        Inapplicable matchers abstain: they contribute neither score nor
        confidence for the pair.
        """
        return True

    @abc.abstractmethod
    def profile(self, sample: AttributeSample) -> Any:
        """Digest a sample into a reusable comparison profile."""

    @abc.abstractmethod
    def score_profiles(self, source: Any, target: Any) -> float:
        """Raw similarity in [0, 1] between two profiles."""

    def merge_profiles(self, profiles: Sequence[Any]) -> Any:
        """The profile of the union of the disjoint samples behind
        *profiles*.  Only meaningful when :attr:`mergeable` is True; the
        result must equal :meth:`profile` of the concatenated samples."""
        raise NotImplementedError(
            f"{self.name!r} profiles are not additive and cannot be merged")

    def score(self, source: AttributeSample, target: AttributeSample) -> float:
        """One-shot convenience: profile both sides and compare."""
        return self.score_profiles(self.profile(source), self.profile(target))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} w={self.weight}>"
