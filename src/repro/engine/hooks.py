"""Observer protocol for engine runs.

Observers receive callbacks around every pipeline stage — the hook surface
for progress bars, structured logging, metrics exporters, and tests that
need to see intermediate pipeline state.  Subclass :class:`EngineObserver`
and override the callbacks you care about; the defaults are no-ops, so
observers stay source-compatible as hooks are added.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .report import RunReport, StageReport

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..context.model import MatchResult
    from ..relational.instance import Database
    from .prepared import PreparedTarget
    from .stages import PipelineState

__all__ = ["EngineObserver"]


class EngineObserver:
    """Base class for engine run observers (all callbacks are no-ops)."""

    def on_run_start(self, source: "Database",
                     prepared: "PreparedTarget") -> None:
        """Called once before the first stage of a run."""

    def on_stage_start(self, stage: str, state: "PipelineState") -> None:
        """Called before a stage executes; ``state`` holds everything the
        pipeline has produced so far and may be inspected freely."""

    def on_stage_end(self, report: StageReport,
                     state: "PipelineState") -> None:
        """Called after a stage executes with its timing and counts."""

    def on_run_end(self, report: RunReport, result: "MatchResult") -> None:
        """Called once after the last stage with the full run report."""
