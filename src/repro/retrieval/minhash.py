"""MinHash-LSH channel for near-duplicate value distributions.

Two columns drawn from the same domain (product codes, state names,
prices rendered the same way) share most of their distinct q-grams even
when frequencies differ; Jaccard similarity over gram *sets* catches them
where tf-weighted scoring may not.  MinHash signatures estimate that
Jaccard cheaply, and banding the signatures into an LSH bucket table
makes lookup sublinear: a query only touches documents that collide with
it in at least one band.

Determinism matters here because the index is pickled into the artifact
store and must rank identically across processes: Python's builtin
``hash`` is salted per process, so base gram hashes come from blake2b
digests, and the permutation family is multiply-shift over ``uint64``
(numpy wraps unsigned overflow with C semantics — intended, that *is* the
mod-2^64 arithmetic).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["MinHashLSH", "gram_hash"]

#: Sentinel signature entry for empty documents: no gram hashes to
#: minimize, so every slot stays at the identity of ``min``.
_EMPTY_SLOT = np.uint64(0xFFFFFFFFFFFFFFFF)


def gram_hash(gram: str) -> int:
    """Stable 64-bit hash of one gram (process-independent, unlike
    builtin ``hash``)."""
    digest = hashlib.blake2b(gram.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class MinHashLSH:
    """MinHash signatures + banded LSH buckets over gram-set documents.

    Parameters
    ----------
    documents:
        One iterable of grams per document (frequencies are irrelevant to
        Jaccard); document ids are list positions.
    num_perm:
        Signature length; more permutations = lower estimator variance.
    bands:
        Number of LSH bands (``num_perm`` must divide evenly).  With the
        defaults (64 permutations, 16 bands of 4 rows) the collision
        curve crosses ~50% Jaccard — near-duplicates almost surely share
        a bucket, unrelated columns almost surely don't.
    seed:
        Seed of the permutation family (part of the index's identity; two
        indexes built with equal inputs and seed are bit-equal).
    """

    def __init__(self, documents: Sequence[Iterable[str]],
                 *, num_perm: int = 64, bands: int = 16, seed: int = 7):
        if num_perm < 1 or bands < 1 or num_perm % bands:
            raise ValueError(
                f"bands ({bands}) must evenly divide num_perm ({num_perm})")
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self.seed = seed
        rng = np.random.default_rng(seed)
        # Odd multipliers keep the multiply-shift family a bijection on
        # the uint64 ring.
        self.mult = rng.integers(1, 1 << 62, size=num_perm,
                                 dtype=np.uint64) * np.uint64(2) + np.uint64(1)
        self.add = rng.integers(0, 1 << 62, size=num_perm, dtype=np.uint64)
        if documents:
            self.signatures = np.stack(
                [self.signature(doc) for doc in documents])
        else:
            self.signatures = np.empty((0, num_perm), dtype=np.uint64)
        buckets: dict[tuple[int, bytes], list[int]] = {}
        for doc_id in range(len(documents)):
            for band, key in self._band_keys(self.signatures[doc_id]):
                buckets.setdefault((band, key), []).append(doc_id)
        self.buckets = buckets

    # ------------------------------------------------------------------
    def signature(self, grams: Iterable[str]) -> np.ndarray:
        """The ``num_perm``-slot MinHash signature of one gram set."""
        hashes = np.array(sorted({gram_hash(g) for g in grams}),
                          dtype=np.uint64)
        if hashes.size == 0:
            return np.full(self.num_perm, _EMPTY_SLOT, dtype=np.uint64)
        with np.errstate(over="ignore"):
            permuted = self.mult[:, None] * hashes[None, :] \
                + self.add[:, None]
        return permuted.min(axis=1)

    def _band_keys(self, signature: np.ndarray):
        for band in range(self.bands):
            chunk = signature[band * self.rows:(band + 1) * self.rows]
            yield band, chunk.tobytes()

    # ------------------------------------------------------------------
    def query(self, grams: Iterable[str]) -> list[tuple[int, float]]:
        """Documents sharing at least one LSH bucket with the query,
        ranked by estimated Jaccard (signature agreement fraction), ties
        by ascending document id."""
        if not len(self.signatures):
            return []
        sig = self.signature(grams)
        candidates: set[int] = set()
        for band, key in self._band_keys(sig):
            candidates.update(self.buckets.get((band, key), ()))
        scored = [
            (doc_id,
             float(np.count_nonzero(self.signatures[doc_id] == sig))
             / self.num_perm)
            for doc_id in candidates
        ]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored

    def __len__(self) -> int:
        return len(self.signatures)

    def __repr__(self) -> str:
        return (f"<MinHashLSH {len(self.signatures)} docs, "
                f"{self.num_perm} perms x {self.bands} bands>")
