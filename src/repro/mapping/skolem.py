"""Skolem functions for unmapped target attributes (paper Section 4.1).

Clio fills target attributes that no source attribute maps to with Skolem
terms — deterministic functions of the mapped values, so that equal source
tuples produce equal surrogates and referential structure is preserved.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["SkolemFunction"]


class SkolemFunction:
    """A named Skolem function ``f(name; args) -> surrogate``.

    Surrogates are stable within one function instance: the same argument
    tuple always yields the same value, and distinct argument tuples yield
    distinct values.  Rendered as ``Sk_name(arg1, arg2, ...)`` — readable in
    generated instances and unambiguous in tests.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("Skolem function needs a name")
        self.name = name
        self._memo: dict[tuple, str] = {}

    def __call__(self, args: Sequence[Any]) -> str:
        key = tuple(args)
        if key not in self._memo:
            rendered = ", ".join(repr(a) for a in key)
            self._memo[key] = f"Sk_{self.name}({rendered})"
        return self._memo[key]

    @property
    def arity_seen(self) -> set[int]:
        return {len(k) for k in self._memo}

    def __repr__(self) -> str:
        return f"<SkolemFunction {self.name} ({len(self._memo)} terms)>"
