"""Numeric-distribution instance matcher.

Summarizes a numeric column into distribution statistics (mean, standard
deviation, quartiles, range) and scores the similarity of two summaries.
This is the "statistical classifier" evidence the paper uses for numeric
attributes, adapted to pairwise matching: two columns drawn from similar
distributions (e.g. ``price`` vs ``price``) score high even when no exact
values coincide.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Sequence

import numpy as np

from .base import AttributeSample, Matcher

__all__ = ["NumericMatcher", "NumericSummary"]


@dataclasses.dataclass(frozen=True)
class NumericSummary:
    """Distribution statistics for a numeric sample."""

    count: int
    mean: float
    std: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[Any]) -> "NumericSummary | None":
        numbers = []
        for v in values:
            try:
                numbers.append(float(v))
            except (TypeError, ValueError):
                continue
        if not numbers:
            return None
        arr = np.asarray(numbers, dtype=float)
        q1, median, q3 = np.percentile(arr, [25, 50, 75])
        return cls(
            count=len(arr),
            mean=float(arr.mean()),
            std=float(arr.std()),
            minimum=float(arr.min()),
            q1=float(q1),
            median=float(median),
            q3=float(q3),
            maximum=float(arr.max()),
        )


def _location_similarity(a: float, b: float, scale: float) -> float:
    """exp(-|a-b|/scale): 1 when equal, decaying with separation."""
    if scale <= 0.0:
        return 1.0 if a == b else 0.0
    return math.exp(-abs(a - b) / scale)


def _range_overlap(s: NumericSummary, t: NumericSummary) -> float:
    """Overlap of [min,max] intervals relative to their union."""
    lo = max(s.minimum, t.minimum)
    hi = min(s.maximum, t.maximum)
    union_lo = min(s.minimum, t.minimum)
    union_hi = max(s.maximum, t.maximum)
    if union_hi == union_lo:
        return 1.0 if hi >= lo else 0.0
    return max(0.0, hi - lo) / (union_hi - union_lo)


class NumericMatcher(Matcher):
    """Similarity of numeric columns from their distribution summaries."""

    name = "numeric"

    def __init__(self, *, weight: float = 1.0):
        self.weight = weight

    def applicable(self, source: AttributeSample, target: AttributeSample) -> bool:
        return (source.attribute.dtype.is_numeric
                and target.attribute.dtype.is_numeric
                and len(source) > 0 and len(target) > 0)

    def profile(self, sample: AttributeSample) -> NumericSummary | None:
        return NumericSummary.from_values(sample.values)

    def score_profiles(self, source: NumericSummary | None,
                       target: NumericSummary | None) -> float:
        if source is None or target is None:
            return 0.0
        # Scale for location comparison: pooled spread, falling back to the
        # magnitude of the means so constant columns still compare sensibly.
        scale = max(source.std, target.std)
        if scale == 0.0:
            scale = max(abs(source.mean), abs(target.mean), 1.0) * 0.1
        mean_sim = _location_similarity(source.mean, target.mean, scale)
        median_sim = _location_similarity(source.median, target.median, scale)
        iqr_s = source.q3 - source.q1
        iqr_t = target.q3 - target.q1
        iqr_scale = max(iqr_s, iqr_t)
        spread_sim = (_location_similarity(iqr_s, iqr_t, iqr_scale)
                      if iqr_scale > 0 else 1.0)
        range_sim = _range_overlap(source, target)
        return 0.35 * mean_sim + 0.25 * median_sim + 0.15 * spread_sim + 0.25 * range_sim
