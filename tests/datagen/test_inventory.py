"""Tests for the Retail/Inventory workload generator."""

import pytest

from repro.errors import ReproError
from repro.datagen import (TARGET_LAYOUTS, add_correlated_attributes,
                           gamma_labels, make_retail_workload, pad_workload)


class TestGammaLabels:
    def test_gamma_2(self):
        assert gamma_labels(2) == (["Book"], ["CD"])

    def test_gamma_6(self):
        books, music = gamma_labels(6)
        assert books == ["Book1", "Book2", "Book3"]
        assert music == ["CD1", "CD2", "CD3"]


class TestWorkload:
    @pytest.fixture(scope="class")
    def workload(self):
        return make_retail_workload(target="aaron", gamma=4, n_source=300,
                                    n_target=120, seed=3)

    def test_source_shape(self, workload):
        items = workload.source.relation("items")
        assert len(items) == 300
        assert set(items.schema.attribute_names) >= {
            "ItemID", "Name", "Creator", "ItemType", "StockStatus", "Code",
            "ListPrice", "Qty"}

    def test_item_type_domain(self, workload):
        items = workload.source.relation("items")
        assert set(items.distinct("ItemType")) <= (
            workload.book_values | workload.music_values)
        assert len(workload.book_values | workload.music_values) == 4

    def test_target_layout_respected(self, workload):
        layout = TARGET_LAYOUTS["aaron"]
        for kind in ("book", "music"):
            table = workload.target.relation(layout[kind]["table"])
            assert len(table) == 120
            assert layout[kind]["title"] in table.schema

    def test_codes_separate_by_kind(self, workload):
        items = workload.source.relation("items")
        for code, item_type in zip(items.column("Code"),
                                   items.column("ItemType")):
            if item_type in workload.book_values:
                assert not code.startswith("B0")
            else:
                assert code.startswith("B0")

    def test_ground_truth_complete(self, workload):
        assert len(workload.ground_truth) == 10  # 5 roles x 2 tables
        for entry in workload.ground_truth:
            assert entry.condition_attribute == "ItemType"

    def test_deterministic(self):
        w1 = make_retail_workload(seed=9, n_source=50, n_target=20)
        w2 = make_retail_workload(seed=9, n_source=50, n_target=20)
        assert w1.source.relation("items").column("Name") == \
            w2.source.relation("items").column("Name")

    def test_seed_changes_data(self):
        w1 = make_retail_workload(seed=1, n_source=50, n_target=20)
        w2 = make_retail_workload(seed=2, n_source=50, n_target=20)
        assert w1.source.relation("items").column("Name") != \
            w2.source.relation("items").column("Name")

    @pytest.mark.parametrize("kwargs", [
        {"target": "nobody"}, {"gamma": 3}, {"gamma": 0},
        {"n_target": 0},
    ])
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ReproError):
            make_retail_workload(**kwargs)


class TestCorrelatedAttributes:
    def test_columns_added(self):
        workload = add_correlated_attributes(
            make_retail_workload(n_source=200, n_target=50, seed=3), 3, 0.5)
        items = workload.source.relation("items")
        assert {"OldType1", "OldType2", "OldType3"} <= set(
            items.schema.attribute_names)

    def test_full_correlation_copies(self):
        workload = add_correlated_attributes(
            make_retail_workload(n_source=200, n_target=50, seed=3), 1, 1.0)
        items = workload.source.relation("items")
        assert items.column("OldType1") == items.column("ItemType")

    def test_zero_correlation_differs(self):
        workload = add_correlated_attributes(
            make_retail_workload(n_source=400, n_target=50, seed=3), 1, 0.0)
        items = workload.source.relation("items")
        same = sum(1 for a, b in zip(items.column("OldType1"),
                                     items.column("ItemType")) if a == b)
        assert same < 200  # about 1/4 expected at gamma=4

    def test_domain_shared(self):
        workload = add_correlated_attributes(
            make_retail_workload(n_source=200, n_target=50, seed=3), 1, 0.3)
        items = workload.source.relation("items")
        assert set(items.distinct("OldType1")) <= set(
            items.distinct("ItemType"))

    def test_bad_rho(self):
        with pytest.raises(ReproError):
            add_correlated_attributes(
                make_retail_workload(n_source=50, n_target=20), 1, 1.5)

    def test_ground_truth_unchanged(self):
        base = make_retail_workload(n_source=100, n_target=40, seed=3)
        noisy = add_correlated_attributes(base, 3, 0.9)
        assert len(noisy.ground_truth) == len(base.ground_truth)


class TestPadding:
    def test_pad_counts(self):
        base = make_retail_workload(n_source=100, n_target=40, seed=3)
        padded = pad_workload(base, 8)
        items = padded.source.relation("items")
        base_items = base.source.relation("items")
        # 8 non-categorical + 8//4 categorical attributes added.
        assert len(items.schema) == len(base_items.schema) + 8 + 2

    def test_targets_padded_too(self):
        base = make_retail_workload(n_source=100, n_target=40, seed=3)
        padded = pad_workload(base, 4)
        for relation in padded.target:
            base_relation = base.target.relation(relation.name)
            assert len(relation.schema) == len(base_relation.schema) + 4 + 1

    def test_zero_pad_is_identity_shape(self):
        base = make_retail_workload(n_source=100, n_target=40, seed=3)
        padded = pad_workload(base, 0)
        assert len(padded.source.relation("items").schema) == \
            len(base.source.relation("items").schema)

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            pad_workload(make_retail_workload(n_source=50, n_target=20), -1)

    def test_padded_categorical_shares_domain(self):
        base = make_retail_workload(n_source=100, n_target=40, seed=3)
        padded = pad_workload(base, 4)
        items = padded.source.relation("items")
        assert set(items.distinct("extracat1")) <= set(
            items.distinct("ItemType"))
