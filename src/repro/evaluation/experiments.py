"""Experiment drivers — one per figure of the paper's Section 5.

Every driver returns ``{x value: {series name: measurement}}`` suitable for
:func:`repro.evaluation.reporting.format_series`, and every measurement is
averaged over (workload seed, partition seed) pairs.  The benchmarks in
``benchmarks/`` are thin wrappers that time and print these drivers.

All drivers run on the match engine through a shared
:class:`~repro.evaluation.runner.EngineRunner`: workloads are memoized per
(parameters, seed) and each distinct target is prepared once per sweep, so
a figure that evaluates dozens of configuration points against the same
few workloads no longer rebuilds the target index at every point.
Reported runtimes therefore measure the matching pipeline itself,
excluding target preparation, uniformly across every point.

Defaults are sized for laptop runs; the paper's exact sweep ranges are kept
as module constants so full-fidelity runs are one argument away.
"""

from __future__ import annotations

import functools
from typing import Callable, Sequence

from ..context.model import ContextMatchConfig
from ..datagen.grades import make_grades_workload
from ..datagen.inventory import (add_correlated_attributes,
                                 make_retail_workload, pad_workload)
from .metrics import EvalMetrics, evaluate_result
from .runner import Averaged, EngineRunner, seed_pairs, summarize

__all__ = [
    "run_retail", "run_grades",
    "omega_sweep", "strawman_comparison", "correlation_sweep",
    "cardinality_fmeasure", "cardinality_runtime",
    "schema_size_fmeasure", "schema_size_runtime",
    "sample_size_sweep", "grades_sigma_sweep",
    "tau_sweep_inventory", "tau_sweep_grades", "tau_runtime_inventory",
]

#: Sweep ranges as the paper plots them.
PAPER_OMEGAS = list(range(2, 31, 2))
PAPER_RHOS = [0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70]
PAPER_GAMMAS = [2, 4, 6, 8, 10]
PAPER_PAD_SIZES = [0, 5, 10, 15, 20, 25, 30]
PAPER_SAMPLE_SIZES = [100, 200, 400, 800, 1200, 1600]
PAPER_SIGMAS = [5, 10, 15, 20, 25, 30, 35]
PAPER_TAUS = [0.0, 0.2, 0.4, 0.5, 0.6, 0.65, 0.8, 0.9]
TARGETS = ["ryan", "aaron", "barrett"]


#: Shared across drivers: sweeps hit the same few workload targets over and
#: over, so prepared targets are reused across configuration points.
_RUNNER = EngineRunner(max_prepared=8)


@functools.lru_cache(maxsize=8)
def _retail_workload(target: str, workload_seed: int, gamma: int,
                     n_source: int, correlated: int, rho: float, pad: int):
    """Memoized workload generation (instances are read-only to matching)."""
    workload = make_retail_workload(target=target, seed=workload_seed,
                                    gamma=gamma, n_source=n_source)
    if correlated:
        workload = add_correlated_attributes(workload, correlated, rho,
                                             seed=workload_seed + 1)
    if pad:
        workload = pad_workload(workload, pad, seed=workload_seed + 2)
    return workload


@functools.lru_cache(maxsize=8)
def _grades_workload(sigma: float, workload_seed: int):
    return make_grades_workload(sigma=sigma, seed=workload_seed)


def run_retail(target: str, config: ContextMatchConfig,
               *, workload_seed: int = 11, gamma: int = 4,
               n_source: int = 1000, correlated: int = 0, rho: float = 0.0,
               pad: int = 0) -> tuple[EvalMetrics, float]:
    """One retail run: returns (metrics, pipeline elapsed seconds)."""
    workload = _retail_workload(target, workload_seed, gamma, n_source,
                                correlated, rho, pad)
    result = _RUNNER.run(workload.source, workload.target, config)
    metrics = evaluate_result(result, workload.ground_truth)
    return metrics, result.elapsed_seconds


def run_grades(sigma: float, config: ContextMatchConfig,
               *, workload_seed: int = 11) -> tuple[EvalMetrics, float]:
    """One grades run: returns (metrics, pipeline elapsed seconds)."""
    workload = _grades_workload(sigma, workload_seed)
    result = _RUNNER.run(workload.source, workload.target, config)
    metrics = evaluate_result(result, workload.ground_truth)
    return metrics, result.elapsed_seconds


def _avg_retail(target: str,
                config_for: Callable[[int], ContextMatchConfig],
                *, repeats: int,
                metric: str = "fmeasure", **workload_kwargs
                ) -> tuple[Averaged, Averaged]:
    """Average a retail measurement over seed pairs; returns
    (metric, runtime)."""
    values, times = [], []
    for wseed, pseed in seed_pairs(repeats):
        config = config_for(pseed)
        metrics, elapsed = run_retail(target, config, workload_seed=wseed,
                                      **workload_kwargs)
        values.append(getattr(metrics, metric))
        times.append(elapsed)
    return summarize(values), summarize(times)



# ---------------------------------------------------------------------------
# Figures 8-10: FMeasure vs ω under Early/Late disjuncts, per target
# ---------------------------------------------------------------------------
def omega_sweep(target: str, omegas: Sequence[float] | None = None,
                *, inference: str = "tgt", repeats: int = 3
                ) -> dict[float, dict[str, float]]:
    """Figures 8-10: FMeasure vs ω, EarlyDisjuncts vs LateDisjuncts."""
    omegas = list(omegas) if omegas is not None else PAPER_OMEGAS
    out: dict[float, dict[str, float]] = {}
    for omega in omegas:
        row: dict[str, float] = {}
        for early, series in ((True, "disjearly"), (False, "disjlate")):
            avg, _ = _avg_retail(
                target,
                lambda seed, e=early, o=omega: ContextMatchConfig(
                    inference=inference, early_disjuncts=e, omega=o,
                    seed=seed),
                repeats=repeats)
            row[series] = avg.mean
        out[omega] = row
    return out


# ---------------------------------------------------------------------------
# Figure 11: MultiTable (strawman selection) vs QualTable
# ---------------------------------------------------------------------------
def strawman_comparison(targets: Sequence[str] | None = None,
                        *, inference: str = "naive", repeats: int = 3
                        ) -> dict[str, dict[str, float]]:
    """Figure 11: QualTable vs the strawman MultiTable selector."""
    targets = list(targets) if targets is not None else TARGETS
    out: dict[str, dict[str, float]] = {}
    for target in targets:
        row: dict[str, float] = {}
        for selection in ("qualtable", "multitable"):
            avg, _ = _avg_retail(
                target,
                lambda seed, s=selection: ContextMatchConfig(
                    inference=inference, selection=s, seed=seed),
                repeats=repeats)
            row[selection] = avg.mean
        out[target] = row
    return out


# ---------------------------------------------------------------------------
# Figures 12-13: correlated low-cardinality attributes
# ---------------------------------------------------------------------------
def correlation_sweep(rhos: Sequence[float] | None = None,
                      *, early_disjuncts: bool, target: str = "ryan",
                      repeats: int = 3) -> dict[float, dict[str, float]]:
    """Figures 12-13: FMeasure with 3 injected ItemType-correlated attributes."""
    rhos = list(rhos) if rhos is not None else PAPER_RHOS
    out: dict[float, dict[str, float]] = {}
    for rho in rhos:
        row: dict[str, float] = {}
        for inference in ("src", "tgt", "naive"):
            avg, _ = _avg_retail(
                target,
                lambda seed, i=inference: ContextMatchConfig(
                    inference=i, early_disjuncts=early_disjuncts, seed=seed),
                repeats=repeats, correlated=3, rho=rho)
            row[inference] = avg.mean
        out[rho] = row
    return out


# ---------------------------------------------------------------------------
# Figure 14: FMeasure vs γ under LateDisjuncts
# ---------------------------------------------------------------------------
def cardinality_fmeasure(gammas: Sequence[int] | None = None,
                         *, target: str = "ryan", repeats: int = 3,
                         n_source: int = 1000
                         ) -> dict[int, dict[str, float]]:
    """Figure 14: FMeasure vs ItemType cardinality γ under LateDisjuncts."""
    gammas = list(gammas) if gammas is not None else PAPER_GAMMAS
    out: dict[int, dict[str, float]] = {}
    for gamma in gammas:
        row: dict[str, float] = {}
        for inference in ("src", "tgt", "naive"):
            avg, _ = _avg_retail(
                target,
                lambda seed, i=inference: ContextMatchConfig(
                    inference=i, early_disjuncts=False, seed=seed),
                repeats=repeats, gamma=gamma, n_source=n_source)
            row[inference] = avg.mean
        out[gamma] = row
    return out


# ---------------------------------------------------------------------------
# Figure 15: runtime of EarlyDisjuncts relative to LateDisjuncts vs γ
# ---------------------------------------------------------------------------
def cardinality_runtime(gammas: Sequence[int] | None = None,
                        targets: Sequence[str] | None = None,
                        *, inference: str = "tgt", repeats: int = 2
                        ) -> dict[int, dict[str, float]]:
    """Figure 15: EarlyDisjuncts runtime as a percentage of LateDisjuncts."""
    gammas = list(gammas) if gammas is not None else PAPER_GAMMAS
    targets = list(targets) if targets is not None else TARGETS
    out: dict[int, dict[str, float]] = {}
    for gamma in gammas:
        row: dict[str, float] = {}
        for target in targets:
            _, early_time = _avg_retail(
                target,
                lambda seed: ContextMatchConfig(
                    inference=inference, early_disjuncts=True, seed=seed),
                repeats=repeats, gamma=gamma)
            _, late_time = _avg_retail(
                target,
                lambda seed: ContextMatchConfig(
                    inference=inference, early_disjuncts=False, seed=seed),
                repeats=repeats, gamma=gamma)
            row[target] = (100.0 * early_time.mean / late_time.mean
                           if late_time.mean > 0 else 0.0)
        out[gamma] = row
    return out


# ---------------------------------------------------------------------------
# Figures 16-17: schema-size scaling (accuracy and runtime)
# ---------------------------------------------------------------------------
def schema_size_fmeasure(sizes: Sequence[int] | None = None,
                         gammas: Sequence[int] = (2, 4, 6),
                         *, target: str = "ryan", inference: str = "tgt",
                         repeats: int = 3) -> dict[int, dict[str, float]]:
    """Figure 16: FMeasure as noise attributes are added, per γ."""
    sizes = list(sizes) if sizes is not None else PAPER_PAD_SIZES
    out: dict[int, dict[str, float]] = {}
    for size in sizes:
        row: dict[str, float] = {}
        for gamma in gammas:
            avg, _ = _avg_retail(
                target,
                lambda seed: ContextMatchConfig(
                    inference=inference, early_disjuncts=True, seed=seed),
                repeats=repeats, gamma=gamma, pad=size)
            row[f"gamma={gamma}"] = avg.mean
        out[size] = row
    return out


def schema_size_runtime(sizes: Sequence[int] | None = None,
                        *, target: str = "ryan", repeats: int = 2,
                        gamma: int = 4) -> dict[int, dict[str, float]]:
    """Figure 17: per-generator runtime as noise attributes are added."""
    sizes = list(sizes) if sizes is not None else PAPER_PAD_SIZES
    out: dict[int, dict[str, float]] = {}
    for size in sizes:
        row: dict[str, float] = {}
        for inference in ("src", "tgt", "naive"):
            _, elapsed = _avg_retail(
                target,
                lambda seed, i=inference: ContextMatchConfig(
                    inference=i, early_disjuncts=True, seed=seed),
                repeats=repeats, gamma=gamma, pad=size)
            row[inference] = elapsed.mean
        out[size] = row
    return out


# ---------------------------------------------------------------------------
# Figure 18: sample-size scaling (TgtClassInfer)
# ---------------------------------------------------------------------------
def sample_size_sweep(sizes: Sequence[int] | None = None,
                      targets: Sequence[str] | None = None,
                      *, inference: str = "tgt", repeats: int = 3
                      ) -> dict[int, dict[str, float]]:
    """Figure 18: FMeasure vs source-table size (TgtClassInfer)."""
    sizes = list(sizes) if sizes is not None else PAPER_SAMPLE_SIZES
    targets = list(targets) if targets is not None else TARGETS
    out: dict[int, dict[str, float]] = {}
    for size in sizes:
        row: dict[str, float] = {}
        for target in targets:
            avg, _ = _avg_retail(
                target,
                lambda seed: ContextMatchConfig(
                    inference=inference, early_disjuncts=True, seed=seed),
                repeats=repeats, n_source=size)
            row[target] = avg.mean
        out[size] = row
    return out


# ---------------------------------------------------------------------------
# Figure 19: grades accuracy vs σ
# ---------------------------------------------------------------------------
def grades_sigma_sweep(sigmas: Sequence[float] | None = None,
                       *, repeats: int = 3, metric: str = "accuracy"
                       ) -> dict[float, dict[str, float]]:
    """Figure 19: grades accuracy vs σ per candidate-view generator."""
    sigmas = list(sigmas) if sigmas is not None else PAPER_SIGMAS
    out: dict[float, dict[str, float]] = {}
    for sigma in sigmas:
        row: dict[str, float] = {}
        for inference in ("src", "tgt", "naive"):
            values = []
            for wseed, pseed in seed_pairs(repeats):
                config = ContextMatchConfig(
                    inference=inference, early_disjuncts=False, seed=pseed)
                metrics, _ = run_grades(sigma, config, workload_seed=wseed)
                values.append(getattr(metrics, metric))
            row[inference] = summarize(values).mean
        out[sigma] = row
    return out


# ---------------------------------------------------------------------------
# Figures 20-22: sensitivity to τ
# ---------------------------------------------------------------------------
def tau_sweep_inventory(taus: Sequence[float] | None = None,
                        targets: Sequence[str] | None = None,
                        *, inference: str = "tgt", repeats: int = 3
                        ) -> dict[float, dict[str, float]]:
    """Figure 20: inventory accuracy vs the pruning threshold τ."""
    taus = list(taus) if taus is not None else PAPER_TAUS
    targets = list(targets) if targets is not None else TARGETS
    out: dict[float, dict[str, float]] = {}
    for tau in taus:
        row: dict[str, float] = {}
        for target in targets:
            avg, _ = _avg_retail(
                target,
                lambda seed, t=tau: ContextMatchConfig(
                    inference=inference, early_disjuncts=True, tau=t,
                    seed=seed),
                repeats=repeats, metric="accuracy")
            row[target] = avg.mean
        out[tau] = row
    return out


def tau_sweep_grades(taus: Sequence[float] | None = None,
                     sigmas: Sequence[float] = (10, 20, 30, 35),
                     *, repeats: int = 3) -> dict[float, dict[str, float]]:
    """Figure 21: grades accuracy vs τ, one series per σ."""
    taus = list(taus) if taus is not None else PAPER_TAUS
    out: dict[float, dict[str, float]] = {}
    for tau in taus:
        row: dict[str, float] = {}
        for sigma in sigmas:
            values = []
            for wseed, pseed in seed_pairs(repeats):
                config = ContextMatchConfig(
                    early_disjuncts=False, tau=tau, seed=pseed)
                metrics, _ = run_grades(sigma, config, workload_seed=wseed)
                values.append(metrics.accuracy)
            row[f"sigma={sigma:g}"] = summarize(values).mean
        out[tau] = row
    return out


def tau_runtime_inventory(taus: Sequence[float] | None = None,
                          targets: Sequence[str] | None = None,
                          *, inference: str = "tgt", repeats: int = 2
                          ) -> dict[float, dict[str, float]]:
    """Figure 22: inventory matching runtime vs τ."""
    taus = list(taus) if taus is not None else PAPER_TAUS
    targets = list(targets) if targets is not None else TARGETS
    out: dict[float, dict[str, float]] = {}
    for tau in taus:
        row: dict[str, float] = {}
        for target in targets:
            _, elapsed = _avg_retail(
                target,
                lambda seed, t=tau: ContextMatchConfig(
                    inference=inference, early_disjuncts=True, tau=t,
                    seed=seed),
                repeats=repeats)
            row[target] = elapsed.mean
        out[tau] = row
    return out
